//! Service-level self-healing tests: retry accounting on deterministic
//! faults, breaker trip → shed → probe → close through the real
//! `SetService` apply path, and the no-regression pin that healthy
//! traffic never pays for either layer.

use std::time::Duration;

use pf_service::{
    BreakerConfig, BreakerState, Fault, Request, RetryPolicy, ServiceConfig, SetService, ShardMap,
};

fn one_shard_cfg() -> ServiceConfig {
    ServiceConfig {
        threads: 2,
        deadline: Some(Duration::from_millis(400)),
        stall_budget: Some(Duration::from_millis(150)),
        retry: RetryPolicy {
            attempts: 2,
            base: Duration::from_millis(1),
            cap: Duration::from_millis(4),
            seed: 7,
        },
        ..ServiceConfig::default()
    }
}

#[test]
fn deterministic_fault_burns_its_retry_budget_then_degrades() {
    let svc = SetService::new(ShardMap::uniform(1, 0, 1_000), one_shard_cfg());
    // One poisoned wave and one healthy wave; the coalescer isolates the
    // faulty request into its own wave, so they fail independently.
    svc.submit(
        Request::insert(vec![(10, 1)])
            .faulty(Fault::Panic)
            .tagged(1),
    );
    svc.submit(Request::insert(vec![(20, 2)]).tagged(2));
    let report = svc.pump();

    // Window fails → replay serves the healthy wave (1 session) and the
    // poisoned wave runs 1 + 2 retry sessions: 5 sessions total.
    assert_eq!(report.served, 1);
    assert_eq!(report.degraded, 1);
    assert_eq!(report.retries, 2, "both retry attempts must have run");
    assert_eq!(report.recovered, 0, "a deterministic fault cannot recover");
    assert_eq!(report.shed, 0);
    assert_eq!(report.sessions, 5, "{report:?}");

    let bad = report.outcomes.iter().find(|o| !o.served).unwrap();
    assert_eq!(bad.attempts, 3, "1 first try + 2 retries: {bad:?}");
    assert!(bad.replayed);
    assert!(!bad.shed);
    let good = report.outcomes.iter().find(|o| o.served).unwrap();
    assert_eq!(good.attempts, 1);

    // The healthy wave committed; the poisoned one left no residue.
    assert!(svc.contains(&20) && !svc.contains(&10));
}

#[test]
fn open_breaker_sheds_in_constant_time_without_sessions() {
    let cfg = ServiceConfig {
        breaker: BreakerConfig {
            threshold: 1,
            open_for: Duration::from_secs(3600), // stays open for the test
            probes: 1,
        },
        ..one_shard_cfg()
    };
    let svc = SetService::new(ShardMap::uniform(1, 0, 1_000), cfg);

    // Trip: one fully-degraded window opens the breaker.
    svc.submit(Request::insert(vec![(10, 1)]).faulty(Fault::Panic));
    let tripped = svc.pump();
    assert_eq!(tripped.degraded, 1);
    assert!(
        matches!(svc.breaker_state(0), BreakerState::Open { .. }),
        "{:?}",
        svc.breaker_state(0)
    );

    // Shed: subsequent windows are dropped without running any session,
    // in wall time far under one deadline/stall budget.
    svc.submit(Request::insert(vec![(20, 2)]).tagged(9));
    let shed = svc.pump();
    assert_eq!(shed.sessions, 0, "an open breaker must not run sessions");
    assert_eq!(shed.shed, 1);
    assert_eq!(shed.served + shed.degraded, 0);
    assert!(shed.wall < Duration::from_millis(100), "{:?}", shed.wall);
    let o = &shed.outcomes[0];
    assert!(o.shed && !o.served);
    assert_eq!(o.attempts, 0);
    assert_eq!(o.tags, vec![9]);
    assert!(o.error.as_deref().unwrap_or("").contains("circuit open"));
    assert!(!svc.contains(&20), "a shed wave must not commit");
}

#[test]
fn half_open_probe_closes_the_breaker_and_serves_again() {
    let cfg = ServiceConfig {
        breaker: BreakerConfig {
            threshold: 1,
            open_for: Duration::ZERO, // next window is already the probe
            probes: 1,
        },
        ..one_shard_cfg()
    };
    let svc = SetService::new(ShardMap::uniform(1, 0, 1_000), cfg);

    svc.submit(Request::insert(vec![(10, 1)]).faulty(Fault::Panic));
    svc.pump();
    assert!(matches!(svc.breaker_state(0), BreakerState::Open { .. }));

    // The cooldown has elapsed (zero), so the next window is the
    // half-open probe; it is healthy, serves, and closes the breaker.
    svc.submit(Request::insert(vec![(20, 2)]));
    let probe = svc.pump();
    assert_eq!(probe.served, 1);
    assert_eq!(probe.shed, 0);
    assert_eq!(
        svc.breaker_state(0),
        BreakerState::Closed { consecutive: 0 }
    );
    assert!(svc.contains(&20));

    // A degraded probe would have re-opened instead.
    svc.submit(Request::insert(vec![(30, 3)]).faulty(Fault::Panic));
    svc.pump();
    assert!(matches!(svc.breaker_state(0), BreakerState::Open { .. }));
}

#[test]
fn healthy_traffic_is_untouched_by_retry_and_breaker_layers() {
    // Breaker armed, retries armed — but with no faults the report must
    // look exactly like the pre-healing service: no retries, no sheds,
    // one session per window, breaker closed throughout.
    let cfg = ServiceConfig {
        breaker: BreakerConfig {
            threshold: 2,
            open_for: Duration::from_millis(50),
            probes: 1,
        },
        ..one_shard_cfg()
    };
    let svc = SetService::new(ShardMap::uniform(2, 0, 1_000), cfg);
    for i in 0..20i64 {
        svc.submit(Request::insert(vec![(i * 37 % 1_000, i as u64)]));
    }
    let report = svc.pump();
    assert_eq!(report.degraded + report.shed, 0, "{report:?}");
    assert_eq!(report.retries + report.recovered, 0);
    assert!(report.outcomes.iter().all(|o| o.attempts == 1 && !o.shed));
    for shard in 0..2 {
        assert_eq!(
            svc.breaker_state(shard),
            BreakerState::Closed { consecutive: 0 }
        );
    }
}
