//! Unit tests for the ingress coalescer — a pure function, so no runtime
//! is spun up here. Each test pins one rewrite rule from the module docs.

use pf_service::{coalesce, CoalescePolicy, Fault, OpKind, Request};

fn policy(max_wave_keys: usize, merge_below: usize) -> CoalescePolicy {
    CoalescePolicy {
        max_wave_keys,
        merge_below,
    }
}

#[test]
fn empty_requests_are_elided() {
    let reqs: Vec<Request<i64>> = vec![
        Request::insert(vec![]),
        Request::delete(vec![]),
        Request::insert(vec![(1, 10)]),
        Request::insert(vec![]),
    ];
    let waves = coalesce(reqs, &CoalescePolicy::default());
    assert_eq!(waves.len(), 1, "empty batches must not produce waves");
    assert_eq!(waves[0].keys(), 1);
}

#[test]
fn all_empty_input_produces_no_waves() {
    let reqs: Vec<Request<i64>> = vec![Request::insert(vec![]), Request::delete(vec![])];
    assert!(coalesce(reqs, &CoalescePolicy::default()).is_empty());
}

#[test]
fn insert_run_merges_into_one_wave() {
    // Five consecutive small inserts → one wave, one merged group.
    let reqs: Vec<Request<i64>> = (0..5)
        .map(|i| Request::insert(vec![(i * 10, i as u64), (i * 10 + 1, i as u64)]).tagged(i as u64))
        .collect();
    let waves = coalesce(reqs, &CoalescePolicy::default());
    assert_eq!(waves.len(), 1);
    assert_eq!(waves[0].groups.len(), 1, "small run merges into group 0");
    assert_eq!(waves[0].keys(), 10);
    assert_eq!(waves[0].tags, vec![0, 1, 2, 3, 4]);
    // Merged group is sorted by key.
    let keys: Vec<i64> = waves[0].groups[0].iter().map(|e| e.0).collect();
    let mut sorted = keys.clone();
    sorted.sort_unstable();
    assert_eq!(keys, sorted);
}

#[test]
fn duplicate_keys_dedup_keep_first() {
    // Same key from two requests in one run: the first writer wins,
    // matching PlainTreap::from_entries (duplicate insert is a no-op).
    let reqs: Vec<Request<i64>> = vec![
        Request::insert(vec![(7, 111), (3, 30)]),
        Request::insert(vec![(7, 222), (9, 90)]),
    ];
    let waves = coalesce(reqs, &CoalescePolicy::default());
    assert_eq!(waves.len(), 1);
    assert_eq!(waves[0].groups[0], vec![(3, 30), (7, 111), (9, 90)]);
}

#[test]
fn large_batches_stay_separate_union_groups() {
    // Two pre-batched updates ≥ merge_below plus one small request:
    // one wave, three groups (merged run first, then each big batch),
    // ready for the balanced union tree.
    let big_a: Vec<(i64, u64)> = (0..8).map(|i| (100 + i, 1)).collect();
    let big_b: Vec<(i64, u64)> = (0..8).map(|i| (200 + i, 2)).collect();
    let reqs = vec![
        Request::insert(vec![(5, 50)]),
        Request::insert(big_a.clone()),
        Request::insert(big_b.clone()),
    ];
    let waves = coalesce(reqs, &policy(8192, 4));
    assert_eq!(waves.len(), 1, "same-kind batches collapse into one wave");
    assert_eq!(waves[0].groups.len(), 3);
    assert_eq!(waves[0].groups[0], vec![(5, 50)]);
    assert_eq!(waves[0].groups[1], big_a);
    assert_eq!(waves[0].groups[2], big_b);
}

#[test]
fn kind_change_closes_the_wave() {
    let reqs: Vec<Request<i64>> = vec![
        Request::insert(vec![(1, 1)]),
        Request::insert(vec![(2, 2)]),
        Request::delete(vec![(1, 0)]),
        Request::insert(vec![(3, 3)]),
    ];
    let waves = coalesce(reqs, &CoalescePolicy::default());
    let kinds: Vec<OpKind> = waves.iter().map(|w| w.kind).collect();
    assert_eq!(kinds, vec![OpKind::Insert, OpKind::Delete, OpKind::Insert]);
    assert_eq!(waves[0].keys(), 2);
}

#[test]
fn key_budget_closes_the_wave() {
    // 3-key budget, four 2-key requests → two waves of 4 keys each.
    let reqs: Vec<Request<i64>> = (0..4)
        .map(|i| Request::insert(vec![(i * 2, 0), (i * 2 + 1, 0)]))
        .collect();
    let waves = coalesce(reqs, &policy(4, 64));
    assert_eq!(waves.len(), 2);
    assert!(waves.iter().all(|w| w.keys() <= 4));
}

#[test]
fn faulty_request_is_isolated() {
    // A faulty request must not share a wave with healthy neighbors of
    // the same kind — its blast radius is exactly itself.
    let reqs: Vec<Request<i64>> = vec![
        Request::insert(vec![(1, 1)]).tagged(1),
        Request::insert(vec![(2, 2)]).faulty(Fault::Panic).tagged(2),
        Request::insert(vec![(3, 3)]).tagged(3),
    ];
    let waves = coalesce(reqs, &CoalescePolicy::default());
    assert_eq!(waves.len(), 3);
    assert_eq!(waves[0].fault, Fault::None);
    assert_eq!(waves[1].fault, Fault::Panic);
    assert_eq!(waves[1].tags, vec![2]);
    assert_eq!(waves[2].fault, Fault::None);
    assert_eq!(waves[2].tags, vec![3]);
}

#[test]
fn tags_travel_with_their_wave() {
    let reqs: Vec<Request<i64>> = vec![
        Request::insert(vec![(1, 1)]).tagged(10),
        Request::insert(vec![(2, 2)]).tagged(11),
        Request::delete(vec![(1, 0)]).tagged(12),
    ];
    let waves = coalesce(reqs, &CoalescePolicy::default());
    assert_eq!(waves[0].tags, vec![10, 11]);
    assert_eq!(waves[1].tags, vec![12]);
}
