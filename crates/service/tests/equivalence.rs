//! Mode-equivalence test: applying one seeded workload in pipelined and
//! barriered mode must leave every shard with the identical final key
//! set — including when injected faults degrade waves — and both must
//! match a sequential `BTreeSet` oracle replayed from the per-wave
//! outcomes.
//!
//! This is the safety half of the PR-6 claim: cross-batch pipelining
//! (and its wave-by-wave replay of a failed window) is purely a
//! scheduling change, never a semantic one.

use std::collections::{BTreeSet, HashSet};
use std::time::Duration;

use pf_service::{
    ApplyMode, DrainReport, Fault, OpKind, Request, ServiceConfig, SetService, ShardMap,
};
use rand::prelude::*;
use rand::rngs::SmallRng;

const KEYSPACE: i64 = 100_000;
const SHARDS: usize = 4;
const PANIC_TAG: u64 = 13;
const WEDGE_TAG: u64 = 29;

/// A seeded mixed workload: small insert runs, pre-batched bulk inserts,
/// deletes of previously inserted keys, and two poison pills (a panic
/// and a wedge) at fixed tags.
fn workload(seed: u64) -> Vec<Request<i64>> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut reqs = Vec::new();
    let mut live: Vec<i64> = Vec::new();
    for tag in 0..40u64 {
        let req = if tag == PANIC_TAG {
            let batch: Vec<(i64, u64)> = (0..50)
                .map(|_| (rng.gen_range(0..KEYSPACE), rng.gen()))
                .collect();
            Request::insert(batch).faulty(Fault::Panic)
        } else if tag == WEDGE_TAG {
            let batch: Vec<(i64, u64)> = (0..50)
                .map(|_| (rng.gen_range(0..KEYSPACE), rng.gen()))
                .collect();
            Request::insert(batch).faulty(Fault::Wedge)
        } else {
            match rng.gen_range(0..10) {
                // Small insert run material.
                0..=4 => {
                    let batch: Vec<(i64, u64)> = (0..rng.gen_range(1..12))
                        .map(|_| (rng.gen_range(0..KEYSPACE), rng.gen()))
                        .collect();
                    live.extend(batch.iter().map(|e| e.0));
                    Request::insert(batch)
                }
                // Pre-batched bulk insert (lands as its own union group).
                5..=7 => {
                    let batch: Vec<(i64, u64)> = (0..rng.gen_range(100..300))
                        .map(|_| (rng.gen_range(0..KEYSPACE), rng.gen()))
                        .collect();
                    live.extend(batch.iter().map(|e| e.0));
                    Request::insert(batch)
                }
                // Delete a sample of keys inserted so far (plus misses).
                _ => {
                    let batch: Vec<(i64, u64)> = (0..rng.gen_range(10..60))
                        .map(|_| {
                            if !live.is_empty() && rng.gen_bool(0.7) {
                                (live[rng.gen_range(0..live.len())], 0)
                            } else {
                                (rng.gen_range(0..KEYSPACE), 0)
                            }
                        })
                        .collect();
                    Request::delete(batch)
                }
            }
        };
        reqs.push(req.tagged(tag));
    }
    reqs
}

/// Run the workload in one mode; return the final per-shard key sets,
/// the served (shard, tag) pairs, and the drain report.
#[allow(clippy::type_complexity)]
fn run(mode: ApplyMode) -> (Vec<Vec<i64>>, HashSet<(usize, u64)>, DrainReport) {
    let cfg = ServiceConfig {
        threads: 2,
        mode,
        // Short deadline so the wedged wave degrades quickly.
        deadline: Some(Duration::from_millis(400)),
        // Faster still: the wedge freezes the session's progress epoch,
        // so the heartbeat stall detector (PR 10) declares it well
        // before the deadline — including on its retry attempts.
        stall_budget: Some(Duration::from_millis(150)),
        ..ServiceConfig::default()
    };
    let svc = SetService::new(ShardMap::uniform(SHARDS, 0, KEYSPACE), cfg);
    for req in workload(42) {
        svc.submit(req);
    }
    let report = svc.pump();
    let keys = (0..SHARDS).map(|i| svc.shard_keys(i)).collect();
    let served = report
        .outcomes
        .iter()
        .filter(|o| o.served)
        .flat_map(|o| o.tags.iter().map(move |t| (o.shard, *t)))
        .collect();
    (keys, served, report)
}

/// Sequential oracle: split each request with the same shard map and
/// apply its sub-batch to a per-shard `BTreeSet` iff that (shard, tag)
/// was served.
fn oracle(served: &HashSet<(usize, u64)>) -> Vec<Vec<i64>> {
    let map = ShardMap::uniform(SHARDS, 0, KEYSPACE);
    let mut sets: Vec<BTreeSet<i64>> = vec![BTreeSet::new(); SHARDS];
    for req in workload(42) {
        for (shard, part) in map.split(req.entries).into_iter().enumerate() {
            if part.is_empty() || !served.contains(&(shard, req.tag)) {
                continue;
            }
            match req.kind {
                OpKind::Insert => sets[shard].extend(part.into_iter().map(|e| e.0)),
                OpKind::Delete => {
                    for (k, _) in part {
                        sets[shard].remove(&k);
                    }
                }
            }
        }
    }
    sets.into_iter().map(|s| s.into_iter().collect()).collect()
}

#[test]
fn pipelined_and_barriered_agree_with_oracle_under_faults() {
    let (keys_p, served_p, report_p) = run(ApplyMode::Pipelined);
    let (keys_b, served_b, report_b) = run(ApplyMode::Barriered);

    // Both modes degrade exactly the same requests: the two poison
    // pills, in every shard their keys landed in.
    assert_eq!(served_p, served_b, "modes served different request sets");
    for report in [&report_p, &report_b] {
        assert!(report.degraded > 0, "poison pills should degrade waves");
        for o in &report.outcomes {
            let poisoned = o.tags.contains(&PANIC_TAG) || o.tags.contains(&WEDGE_TAG);
            assert_eq!(
                o.served, !poisoned,
                "wave fate must track fault injection exactly: {o:?}"
            );
        }
    }

    // The failed pipelined windows were replayed wave-by-wave, and the
    // healthy replayed waves committed.
    assert!(
        report_p.outcomes.iter().any(|o| o.replayed && o.served),
        "pipelined mode should recover healthy waves via replay"
    );
    assert!(!report_b.outcomes.iter().any(|o| o.replayed));

    // Identical final key sets per shard, and both match the oracle.
    let expect = oracle(&served_p);
    for i in 0..SHARDS {
        assert_eq!(keys_p[i], keys_b[i], "shard {i} diverged between modes");
        assert_eq!(keys_p[i], expect[i], "shard {i} diverged from oracle");
        assert!(!keys_p[i].is_empty(), "shard {i} ended empty — weak test");
    }
}

#[test]
fn healthy_drive_matches_pump() {
    // The concurrent drive() path and the sequential pump() path agree
    // on a fault-free workload.
    let reqs: Vec<Request<i64>> = workload(7)
        .into_iter()
        .map(|r| r.faulty(Fault::None))
        .collect();

    let cfg = ServiceConfig {
        threads: 2,
        ..ServiceConfig::default()
    };
    let svc_a = SetService::new(ShardMap::uniform(SHARDS, 0, KEYSPACE), cfg);
    let report_a = svc_a.drive(reqs.clone());
    assert_eq!(report_a.degraded, 0);

    let svc_b = SetService::new(ShardMap::uniform(SHARDS, 0, KEYSPACE), cfg);
    for r in reqs {
        svc_b.submit(r);
    }
    let report_b = svc_b.pump();
    assert_eq!(report_b.degraded, 0);

    for i in 0..SHARDS {
        assert_eq!(svc_a.shard_keys(i), svc_b.shard_keys(i));
    }
    assert_eq!(report_a.keys_applied, report_b.keys_applied);
}
