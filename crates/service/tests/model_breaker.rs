//! Bounded-exhaustive model test of the circuit breaker and retry
//! backoff — the clock-free halves of the PR-10 self-healing layer.
//!
//! The breaker is a pure state machine over a caller-supplied virtual
//! clock, so we can drive it through *every* event sequence up to a
//! bounded depth (ticks, healthy windows, degraded windows — 3^8
//! sequences per config) and check each transition against the
//! documented spec. No real time, no threads: every assertion is
//! deterministic, the same style as `pf-check`'s schedule-exhaustive
//! runtime models.

use std::time::Duration;

use pf_service::{BreakerConfig, BreakerState, CircuitBreaker, RetryPolicy};

const TICK: Duration = Duration::from_millis(10);

#[derive(Clone, Copy, Debug)]
enum Ev {
    /// Advance the virtual clock one tick.
    Tick,
    /// Gate + run one window that ends healthy (`false`) or degraded
    /// (`true`); a shed window skips the run, matching the service.
    Window(bool),
}

/// Drive one breaker through `seq`, checking every step against the
/// documented transition relation. Returns the set of state
/// discriminants visited (for non-vacuity checks).
fn run_seq(cfg: BreakerConfig, seq: &[Ev]) -> [bool; 3] {
    let mut b = CircuitBreaker::new(cfg);
    let mut now = Duration::ZERO;
    let mut visited = [false; 3];
    let note = |s: BreakerState, v: &mut [bool; 3]| match s {
        BreakerState::Closed { .. } => v[0] = true,
        BreakerState::Open { .. } => v[1] = true,
        BreakerState::HalfOpen { .. } => v[2] = true,
    };
    note(b.state(), &mut visited);
    for ev in seq {
        match *ev {
            Ev::Tick => now += TICK,
            Ev::Window(degraded) => {
                let before = b.state();
                let admitted = b.admit(now);
                // Spec: only a still-cooling open breaker sheds; an
                // expired one flips to a fresh half-open probe in the
                // same gate call.
                match before {
                    BreakerState::Open { until } => {
                        assert_eq!(admitted, now >= until, "admit vs until at {now:?}");
                        if admitted {
                            assert_eq!(b.state(), BreakerState::HalfOpen { healthy: 0 });
                        } else {
                            assert_eq!(b.state(), before, "shedding must not change state");
                        }
                    }
                    _ => assert!(admitted, "closed/half-open must always admit"),
                }
                if !admitted {
                    continue;
                }
                let pre = b.state();
                b.on_window(degraded, now);
                let post = b.state();
                if cfg.threshold == 0 {
                    // Disabled: the machine is inert.
                    assert_eq!(post, pre, "threshold 0 must never transition");
                } else {
                    match (pre, degraded) {
                        (BreakerState::Closed { consecutive }, true) => {
                            if consecutive + 1 >= cfg.threshold {
                                assert_eq!(
                                    post,
                                    BreakerState::Open {
                                        until: now + cfg.open_for
                                    }
                                );
                            } else {
                                assert_eq!(
                                    post,
                                    BreakerState::Closed {
                                        consecutive: consecutive + 1
                                    }
                                );
                            }
                        }
                        (BreakerState::Closed { .. }, false) => {
                            assert_eq!(post, BreakerState::Closed { consecutive: 0 });
                        }
                        (BreakerState::HalfOpen { .. }, true) => {
                            assert_eq!(
                                post,
                                BreakerState::Open {
                                    until: now + cfg.open_for
                                }
                            );
                        }
                        (BreakerState::HalfOpen { healthy }, false) => {
                            if healthy + 1 >= cfg.probes.max(1) {
                                assert_eq!(post, BreakerState::Closed { consecutive: 0 });
                            } else {
                                assert_eq!(
                                    post,
                                    BreakerState::HalfOpen {
                                        healthy: healthy + 1
                                    }
                                );
                            }
                        }
                        (BreakerState::Open { .. }, _) => {
                            unreachable!("admit already flipped an expired open breaker")
                        }
                    }
                }
                note(post, &mut visited);
            }
        }
    }
    visited
}

/// Every event sequence of length `depth` over {Tick, Healthy,
/// Degraded}, checked against the spec, for a grid of configs.
#[test]
fn exhaustive_bounded_sequences_match_the_spec() {
    const DEPTH: u32 = 8;
    let alphabet = [Ev::Tick, Ev::Window(false), Ev::Window(true)];
    let mut any_open = false;
    for threshold in [0u32, 1, 2, 3] {
        for open_ticks in [0u32, 1, 3] {
            for probes in [1u32, 2] {
                let cfg = BreakerConfig {
                    threshold,
                    open_for: TICK * open_ticks,
                    probes,
                };
                for code in 0..3u64.pow(DEPTH) {
                    let mut c = code;
                    let seq: Vec<Ev> = (0..DEPTH)
                        .map(|_| {
                            let ev = alphabet[(c % 3) as usize];
                            c /= 3;
                            ev
                        })
                        .collect();
                    let visited = run_seq(cfg, &seq);
                    any_open |= visited[1];
                }
            }
        }
    }
    // Non-vacuity: the exploration actually reached the open state.
    assert!(any_open, "no sequence ever opened a breaker");
}

/// The canonical healing cycle, spelled out: trip, shed, cool down,
/// probe, close.
#[test]
fn full_cycle_closed_open_halfopen_closed() {
    let cfg = BreakerConfig {
        threshold: 2,
        open_for: TICK * 3,
        probes: 2,
    };
    let mut b = CircuitBreaker::new(cfg);
    let mut now = Duration::ZERO;

    // Two consecutive degraded windows trip it; a healthy one in
    // between resets the count.
    assert!(b.admit(now));
    b.on_window(true, now);
    assert!(b.admit(now));
    b.on_window(false, now);
    assert_eq!(b.state(), BreakerState::Closed { consecutive: 0 });
    for _ in 0..2 {
        assert!(b.admit(now));
        b.on_window(true, now);
    }
    assert_eq!(b.state(), BreakerState::Open { until: TICK * 3 });

    // Cooling: sheds until the virtual clock reaches `until`.
    for _ in 0..3 {
        assert!(!b.admit(now), "must shed while cooling at {now:?}");
        now += TICK;
    }
    // Probe window admitted; first healthy probe is not enough
    // (probes = 2), the second closes it.
    assert!(b.admit(now));
    assert_eq!(b.state(), BreakerState::HalfOpen { healthy: 0 });
    b.on_window(false, now);
    assert_eq!(b.state(), BreakerState::HalfOpen { healthy: 1 });
    assert!(b.admit(now));
    b.on_window(false, now);
    assert_eq!(b.state(), BreakerState::Closed { consecutive: 0 });

    // And a degraded probe would have gone straight back to open.
    for _ in 0..2 {
        assert!(b.admit(now));
        b.on_window(true, now);
    }
    now += TICK * 3;
    assert!(b.admit(now));
    b.on_window(true, now);
    assert_eq!(
        b.state(),
        BreakerState::Open {
            until: now + TICK * 3
        }
    );
}

/// Retry backoff: deterministic per (seed, shard), exponential to the
/// cap, never below half the nominal delay, never above it.
#[test]
fn retry_backoff_is_deterministic_bounded_and_exponential() {
    let policy = RetryPolicy {
        attempts: 8,
        base: Duration::from_millis(1),
        cap: Duration::from_millis(20),
        seed: 0xDECAF,
    };

    // Same shard ⇒ identical delay sequence (replayable runs).
    let (mut a, mut b) = (policy.stream(3), policy.stream(3));
    let seq_a: Vec<Duration> = (0..8).map(|n| policy.delay(n, &mut a)).collect();
    let seq_b: Vec<Duration> = (0..8).map(|n| policy.delay(n, &mut b)).collect();
    assert_eq!(seq_a, seq_b);

    // Different shards ⇒ different jitter streams.
    let (mut c, mut d) = (policy.stream(0), policy.stream(1));
    let seq_c: Vec<Duration> = (0..8).map(|n| policy.delay(n, &mut c)).collect();
    let seq_d: Vec<Duration> = (0..8).map(|n| policy.delay(n, &mut d)).collect();
    assert_ne!(seq_c, seq_d, "shard streams must decorrelate");

    // Bounds: delay n ∈ [nominal/2, nominal], nominal = min(base·2ⁿ, cap).
    for (n, &got) in seq_a.iter().enumerate() {
        let nominal = (policy.base * 2u32.pow(n as u32)).min(policy.cap);
        assert!(
            got >= nominal / 2,
            "attempt {n}: {got:?} < {:?}",
            nominal / 2
        );
        assert!(got <= nominal, "attempt {n}: {got:?} > {nominal:?}");
    }
    // The tail is capped, not still growing.
    assert!(seq_a[7] <= policy.cap);

    // Zero-jitter degenerate policy (base == cap, span may be 0) stays
    // well-defined.
    let flat = RetryPolicy {
        base: Duration::from_millis(4),
        cap: Duration::from_millis(4),
        ..policy
    };
    let mut s = flat.stream(0);
    for n in 0..4 {
        let d = flat.delay(n, &mut s);
        assert!(d >= Duration::from_millis(2) && d <= Duration::from_millis(4));
    }
}
