//! Range queries over committed snapshot roots: `SetService::range`
//! routes `[lo, hi)` through the contiguous run of owning shards and
//! concatenates their pruned in-order walks — checked against a
//! `BTreeSet` oracle, across shard boundaries, and concurrently with
//! in-flight apply sessions (snapshot semantics: a scan never blocks
//! and never sees a half-applied wave in any single shard).

use std::collections::BTreeSet;
use std::ops::Bound::{Excluded, Included};

use pf_service::{Request, ServiceConfig, SetService, ShardMap};
use rand::prelude::*;
use rand::rngs::SmallRng;

const KEYSPACE: i64 = 10_000;
const SHARDS: usize = 4;

fn seeded_service(seed: u64, n: usize) -> (SetService<i64>, BTreeSet<i64>) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let keys: Vec<(i64, u64)> = (0..n).map(|_| (rng.gen_range(0..KEYSPACE), 0)).collect();
    let oracle: BTreeSet<i64> = keys.iter().map(|e| e.0).collect();
    let svc = SetService::new(
        ShardMap::uniform(SHARDS, 0, KEYSPACE),
        ServiceConfig {
            threads: 2,
            ..ServiceConfig::default()
        },
    );
    svc.submit(Request::insert(keys));
    let report = svc.pump();
    assert_eq!(report.degraded, 0);
    (svc, oracle)
}

fn oracle_range(set: &BTreeSet<i64>, lo: i64, hi: i64) -> Vec<i64> {
    if lo >= hi {
        return Vec::new();
    }
    set.range((Included(lo), Excluded(hi))).copied().collect()
}

#[test]
fn range_matches_oracle_across_shards() {
    let (svc, oracle) = seeded_service(11, 3000);
    let mut rng = SmallRng::seed_from_u64(12);
    // Random ranges, including cross-shard, single-shard, and empty.
    for _ in 0..200 {
        let a = rng.gen_range(-100..KEYSPACE + 100);
        let b = rng.gen_range(-100..KEYSPACE + 100);
        let got = svc.range(&a, &b);
        assert_eq!(got, oracle_range(&oracle, a, b), "range [{a}, {b})");
    }
    // Whole-space scan is the sorted union of every shard.
    assert_eq!(
        svc.range(&i64::MIN, &i64::MAX),
        oracle.iter().copied().collect::<Vec<_>>()
    );
}

#[test]
fn range_respects_shard_boundaries_and_bounds() {
    let (svc, oracle) = seeded_service(21, 2000);
    // Shard width for uniform(4, 0, 10_000) is 2_500: exercise ranges
    // that start/end exactly on boundaries (hi is exclusive).
    for (lo, hi) in [
        (0, 2_500),
        (2_500, 5_000),
        (2_499, 2_501),
        (0, 10_000),
        (5_000, 5_000),
        (7_000, 3_000),
    ] {
        assert_eq!(
            svc.range(&lo, &hi),
            oracle_range(&oracle, lo, hi),
            "range [{lo}, {hi})"
        );
    }
}

#[test]
fn range_is_sorted_and_deduplicated() {
    let (svc, _) = seeded_service(31, 5000);
    let all = svc.range(&0, &KEYSPACE);
    assert!(
        all.windows(2).all(|w| w[0] < w[1]),
        "not strictly ascending"
    );
}

#[test]
fn range_scans_during_concurrent_drive() {
    // Scans walk committed snapshots only: they never block on the
    // in-flight apply sessions and always return a sorted subset of the
    // final key set (inserts only — no deletes — so monotonicity holds).
    let mut rng = SmallRng::seed_from_u64(41);
    let reqs: Vec<Request<i64>> = (0..60)
        .map(|_| {
            Request::insert(
                (0..rng.gen_range(20..80))
                    .map(|_| (rng.gen_range(0..KEYSPACE), 0))
                    .collect(),
            )
        })
        .collect();
    let oracle: BTreeSet<i64> = reqs
        .iter()
        .flat_map(|r| r.entries.iter().map(|e| e.0))
        .collect();
    let svc = SetService::new(
        ShardMap::uniform(SHARDS, 0, KEYSPACE),
        ServiceConfig {
            threads: 2,
            ..ServiceConfig::default()
        },
    );
    std::thread::scope(|s| {
        let svc = &svc;
        let scanner = s.spawn(move || {
            for _ in 0..50 {
                let got = svc.range(&1_000, &9_000);
                assert!(got.windows(2).all(|w| w[0] < w[1]));
                std::thread::yield_now();
            }
        });
        let report = svc.drive(reqs.clone());
        assert_eq!(report.degraded, 0);
        scanner.join().unwrap();
    });
    assert_eq!(
        svc.range(&i64::MIN, &i64::MAX),
        oracle.iter().copied().collect::<Vec<_>>()
    );
}

#[test]
fn drive_report_carries_wall_clock_throughput() {
    let (svc, _) = seeded_service(51, 100);
    let mut rng = SmallRng::seed_from_u64(52);
    let reqs: Vec<Request<i64>> = (0..20)
        .map(|_| Request::insert((0..50).map(|_| (rng.gen_range(0..KEYSPACE), 0)).collect()))
        .collect();
    let report = svc.drive(reqs);
    assert!(report.wall.as_nanos() > 0, "drive must stamp its wall span");
    assert!(report.keys_applied > 0);
    assert!(report.keys_per_sec_wall() > 0.0);
    assert!(report.keys_per_sec_wall().is_finite());
}
