//! `trace`-feature integration: a degraded wave ships with the timeline
//! of the session that failed it, and a failed pipelined window's
//! timeline travels on the drain report (satellite of PR 8's pluggable
//! scheduling policies — the same plumbing also tags every timeline with
//! the session's policy label).

#![cfg(feature = "trace")]

use std::sync::Arc;
use std::time::Duration;

use pf_rt::{Runtime, SchedPolicy};
use pf_service::{Fault, Request, ServiceConfig, SetService, ShardMap};

fn service(sched: SchedPolicy) -> SetService<i64> {
    let cfg = ServiceConfig {
        threads: 2,
        window: 8,
        deadline: Some(Duration::from_millis(400)),
        sched,
        ..ServiceConfig::default()
    };
    // A private runtime: the pool-wide last-trace slot must not race
    // other tests on the shared pool.
    SetService::with_runtime(
        Arc::new(Runtime::new(2)),
        ShardMap::uniform(1, 0, 1_000),
        cfg,
    )
}

#[test]
fn degraded_wave_ships_with_its_timeline() {
    let svc = service(SchedPolicy::default());
    svc.submit(Request::insert(vec![(1, 1), (2, 2)]).tagged(0));
    svc.submit(
        Request::insert((0..40).map(|i| (10 + i, 1)).collect())
            .faulty(Fault::Panic)
            .tagged(1),
    );
    svc.submit(Request::insert(vec![(500, 1)]).tagged(2));
    let report = svc.pump();
    assert!(report.degraded >= 1, "the poisoned wave must degrade");
    assert!(report.served >= 1, "healthy waves must replay and serve");

    // The faulty request is isolated into its own wave, so the window
    // holds several waves: its failed session's timeline lands on the
    // report, captured before the replay sessions overwrite the slot.
    assert!(
        !report.window_traces.is_empty(),
        "a failed window's timeline must ship with the report"
    );
    assert!(report.window_traces[0].events() > 0);

    // The degraded wave itself carries its replay session's timeline.
    let degraded = report
        .outcomes
        .iter()
        .find(|o| !o.served)
        .expect("a degraded outcome");
    let tr = degraded
        .trace
        .as_ref()
        .expect("degraded wave must carry its failed session's trace");
    assert!(tr.events() > 0);
    assert_eq!(tr.policy, SchedPolicy::default().label());

    // Served waves carry no timeline — diagnosis is for failures.
    assert!(report
        .outcomes
        .iter()
        .filter(|o| o.served)
        .all(|o| o.trace.is_none()));
}

#[test]
fn session_traces_are_tagged_with_the_configured_policy() {
    let sched = SchedPolicy {
        steal: pf_rt::StealKind::Half,
        victim: pf_rt::VictimSelect::LastVictimFirst,
        resume: pf_rt::ResumePlace::Mailbox,
        spawn: pf_rt::SpawnOrder::ChildFirst,
    };
    let svc = service(sched);
    svc.submit(Request::insert((0..200).map(|i| (i, 1)).collect()).tagged(0));
    svc.submit(Request::insert(vec![(7, 7)]).faulty(Fault::Panic).tagged(1));
    let report = svc.pump();
    assert!(report.degraded >= 1);
    let degraded = report.outcomes.iter().find(|o| !o.served).unwrap();
    let tr = degraded.trace.as_ref().expect("timeline attached");
    assert_eq!(
        tr.policy,
        sched.label(),
        "apply sessions must run under the configured scheduling policy"
    );
    // Healthy keys committed despite the non-default policy.
    assert_eq!(svc.shard_keys(0).len(), 200);
}
