//! Mutex-based future cell: the straightforward implementation used as the
//! ablation baseline against the lock-free cell (experiment E15). Same
//! semantics and API shape as [`mod@crate::cell`], but every operation takes a
//! `parking_lot::Mutex`, and the waiter list is unbounded — so this variant
//! also supports **non-linear** programs (multiple touches per cell), like
//! the fetch-and-add based CRCW implementation the paper cites.

use std::sync::Arc;

use crate::sync::Mutex;

use crate::error::{PoisonInfo, PoisonOutcome, PoisonTarget, StuckCell};
use crate::pool::{SessionSlot, SessionTask};
use crate::scheduler::Worker;
use crate::task::Task;

/// A suspended continuation, pre-bound to its cell: it locks the cell and
/// clones the value out when it runs (one allocation per suspension, same
/// hand-off shape as the lock-free cell).
type Waiter = Box<dyn FnOnce(&Worker) + Send>;

enum State<T> {
    /// Unwritten; each suspended waiter carries the index of the worker
    /// whose touch suspended it (the mailbox resume target) and the slot
    /// of its owning session (its accounting/abort identity — waiters of
    /// several concurrent sessions can share one cell).
    Empty(Vec<(usize, Arc<SessionSlot>, Waiter)>),
    Full(T),
    /// A session aborted with waiters suspended here and no other
    /// session's waiters remained; same failure model as the lock-free
    /// cell — see `cell.rs` and DESIGN.md.
    Poisoned(Arc<PoisonInfo>),
}

struct Inner<T> {
    state: Mutex<State<T>>,
}

impl<T: Send> PoisonTarget for Inner<T> {
    fn poison(&self, ctx: &Arc<PoisonInfo>) -> PoisonOutcome {
        let mut g = self.state.lock().unwrap_or_else(|e| e.into_inner());
        match &mut *g {
            State::Empty(ws) if ws.iter().any(|(_, s, _)| s.id == ctx.session) => {
                // Drop only the aborting session's waiters. Survivors of
                // *other* sessions keep the cell alive and unpoisoned —
                // their write can still arrive and wake them.
                let all = std::mem::take(ws);
                let (mine, rest): (Vec<_>, Vec<_>) =
                    all.into_iter().partition(|(_, s, _)| s.id == ctx.session);
                if rest.is_empty() {
                    *g = State::Poisoned(Arc::clone(ctx));
                } else {
                    *g = State::Empty(rest);
                }
                drop(g);
                let dropped = mine.len() as u64;
                for (_, _, w) in mine {
                    // A destructor panic must not wedge the abort cleanup.
                    let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| drop(w)));
                }
                PoisonOutcome {
                    stuck: Some(StuckCell {
                        addr: self as *const Self as usize,
                        payload_type: std::any::type_name::<T>(),
                        kind: "mutex_cell",
                    }),
                    dropped,
                }
            }
            // No waiter of the aborting session (fulfilled after
            // registration, never touched, foreign waiters only, or
            // already poisoned): leave the state alone.
            _ => PoisonOutcome::none(),
        }
    }
}

/// Write half (consumed on write).
pub struct MxWrite<T> {
    inner: Arc<Inner<T>>,
}

/// Read half (cloneable; any number of touches).
pub struct MxRead<T> {
    inner: Arc<Inner<T>>,
}

impl<T> Clone for MxRead<T> {
    fn clone(&self) -> Self {
        MxRead {
            inner: Arc::clone(&self.inner),
        }
    }
}

/// Create an empty mutex-based cell.
pub fn mx_cell<T>() -> (MxWrite<T>, MxRead<T>) {
    let inner = Arc::new(Inner {
        state: Mutex::new(State::Empty(Vec::new())),
    });
    (
        MxWrite {
            inner: Arc::clone(&inner),
        },
        MxRead { inner },
    )
}

impl<T: Clone + Send + 'static> MxWrite<T> {
    /// Write the value and reactivate every suspended continuation.
    pub fn fulfill(self, worker: &Worker, value: T) {
        // Progress of the fulfilling session (see the lock-free cell).
        worker.note_progress();
        crate::trace::fulfill(worker, Arc::as_ptr(&self.inner) as *const () as usize);
        let waiters = {
            let mut g = self.inner.state.lock().unwrap();
            if let State::Poisoned(info) = &*g {
                let info = Arc::clone(info);
                drop(g);
                panic!(
                    "fulfill of a poisoned mutex cell (session {}): {info}",
                    worker.session_id()
                );
            }
            match std::mem::replace(&mut *g, State::Full(value)) {
                State::Empty(ws) => ws,
                State::Full(_) => unreachable!("mutex cell written twice"),
                State::Poisoned(_) => unreachable!("checked above"),
            }
        };
        // Waiter hand-off: each box was allocated at touch time and is
        // enqueued as-is (no re-boxing, no per-waiter clone here — the
        // waiter clones the value out of the cell when it runs). Each
        // waiter's liveness unit was added by `note_suspend` on its own
        // session, where it is now resumed — waiters of several
        // concurrent sessions can share this cell; placement is each
        // waiter's session's resume policy.
        for (owner, session, w) in waiters {
            worker.resume_transferred(
                SessionTask {
                    session,
                    task: Task::from_boxed(w),
                },
                owner,
            );
        }
    }
}

impl<T: Clone + Send + 'static> MxRead<T> {
    /// Touch: run `cont` with the value now or when it arrives.
    pub fn touch(&self, worker: &Worker, cont: impl FnOnce(T, &Worker) + Send + 'static) {
        let immediate = {
            let mut g = self.inner.state.lock().unwrap();
            match &mut *g {
                State::Full(v) => Some(v.clone()),
                State::Poisoned(info) => {
                    let info = Arc::clone(info);
                    drop(g);
                    panic!(
                        "touch of a poisoned mutex cell (session {}): {info}",
                        worker.session_id()
                    );
                }
                State::Empty(ws) => {
                    worker.note_suspend();
                    crate::trace::suspend(worker, Arc::as_ptr(&self.inner) as *const () as usize);
                    let session = worker.clone_session();
                    // First suspension *of this session*: register with
                    // its slot so its abort can poison the cell (one
                    // registry entry covers all of the session's waiters
                    // here; other sessions register independently).
                    if !ws.iter().any(|(_, s, _)| s.id == session.id) {
                        let weak = Arc::downgrade(&self.inner);
                        worker.register_suspend(weak);
                    }
                    let inner = Arc::clone(&self.inner);
                    ws.push((
                        worker.index(),
                        session,
                        Box::new(move |wk: &Worker| {
                            let v = match &*inner.state.lock().unwrap() {
                                State::Full(v) => v.clone(),
                                _ => unreachable!("waiter ran before write"),
                            };
                            cont(v, wk);
                        }),
                    ));
                    return;
                }
            }
        };
        if let Some(v) = immediate {
            worker.run_inline_or_spawn(v, cont);
        }
    }

    /// Clone the value out if written (post-run inspection). `None` for
    /// unwritten *and* poisoned cells.
    pub fn peek(&self) -> Option<T> {
        match &*self.inner.state.lock().unwrap() {
            State::Full(v) => Some(v.clone()),
            State::Empty(_) | State::Poisoned(_) => None,
        }
    }

    /// [`MxRead::peek`], panicking on an unwritten cell.
    pub fn expect(&self) -> T {
        self.peek().expect("mutex cell not written")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Runtime;

    #[test]
    fn write_then_touch() {
        let (w, r) = mx_cell::<u32>();
        let (ow, or) = mx_cell::<u32>();
        Runtime::new(2).run(move |wk| {
            w.fulfill(wk, 4);
            r.touch(wk, move |v, wk| ow.fulfill(wk, v + 1));
        });
        assert_eq!(or.expect(), 5);
    }

    #[test]
    fn touch_then_write_wakes() {
        let (w, r) = mx_cell::<u32>();
        let (ow, or) = mx_cell::<u32>();
        Runtime::new(2).run(move |wk| {
            r.touch(wk, move |v, wk| ow.fulfill(wk, v * 10));
            wk.spawn(move |wk| w.fulfill(wk, 6));
        });
        assert_eq!(or.expect(), 60);
    }

    #[test]
    fn multiple_waiters_all_wake() {
        // Non-linear: five touches on one cell.
        let (w, r) = mx_cell::<u32>();
        let outs: Vec<_> = (0..5).map(|_| mx_cell::<u32>()).collect();
        let (ows, ors): (Vec<_>, Vec<_>) = outs.into_iter().unzip();
        Runtime::new(3).run(move |wk| {
            for ow in ows {
                let rr = r.clone();
                wk.spawn(move |wk| rr.touch(wk, move |v, wk| ow.fulfill(wk, v)));
            }
            wk.spawn(move |wk| w.fulfill(wk, 123));
        });
        for or in ors {
            assert_eq!(or.expect(), 123);
        }
    }

    #[test]
    fn racing_stress() {
        for i in 0..100 {
            let (w, r) = mx_cell::<usize>();
            let (ow, or) = mx_cell::<usize>();
            Runtime::new(4).run(move |wk| {
                wk.spawn(move |wk| r.touch(wk, move |v, wk| ow.fulfill(wk, v)));
                wk.spawn(move |wk| w.fulfill(wk, i));
            });
            assert_eq!(or.expect(), i);
        }
    }
}
