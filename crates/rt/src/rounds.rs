//! The pool-backed round-barrier engine: `pf_backend::RoundExec` on the
//! persistent work-stealing runtime.
//!
//! The hand-pipelined baselines (Cole, PVW) advance in synchronous rounds;
//! [`PoolRounds`] runs each round's jobs as tasks on a shared
//! [`Runtime`] and uses run-to-quiescence as the barrier — one injector
//! push plus a wakeup per round on warm parked workers, the same pool the
//! futures programs are timed on. Results come back in submission order
//! via one slot per job, so the caller's sequential apply phase (and hence
//! every counted statistic) is identical to the [`SeqRounds`] execution.
//!
//! [`SeqRounds`]: pf_backend::SeqRounds

use std::sync::Arc;

use pf_backend::{Job, RoundError, RoundExec};

use crate::scheduler::Runtime;
use crate::sync::Mutex;

/// A round-barrier executor on the persistent worker pool: each round's
/// jobs are spawned as tasks and the pool's quiescence detection is the
/// barrier.
pub struct PoolRounds {
    rt: Arc<Runtime>,
    executed: u64,
}

impl PoolRounds {
    /// A round engine on the shared pool of width `threads` (workers are
    /// created once per width and reused across rounds and engines).
    /// (Unavailable under the model checker, like [`Runtime::shared`];
    /// model tests use [`PoolRounds::on`] with a session-local pool.)
    #[cfg(not(pf_check))]
    pub fn new(threads: usize) -> Self {
        PoolRounds::on(Runtime::shared(threads))
    }

    /// A round engine on an existing runtime.
    pub fn on(rt: Arc<Runtime>) -> Self {
        PoolRounds { rt, executed: 0 }
    }
}

impl RoundExec for PoolRounds {
    fn round<T: Send + 'static>(&mut self, jobs: Vec<Job<T>>) -> Vec<T> {
        self.executed += 1;
        if jobs.is_empty() {
            return Vec::new();
        }
        let slots: Arc<Vec<Mutex<Option<T>>>> =
            Arc::new(jobs.iter().map(|_| Mutex::new(None)).collect());
        let fill = Arc::clone(&slots);
        self.rt.run(move |wk| {
            for (i, job) in jobs.into_iter().enumerate() {
                let fill = Arc::clone(&fill);
                wk.spawn(move |_wk| {
                    let v = job();
                    *fill[i].lock().unwrap() = Some(v);
                });
            }
        });
        slots
            .iter()
            .map(|m| m.lock().unwrap().take().expect("round job did not run"))
            .collect()
    }

    /// Fault-contained round: a panicking job aborts the round's session,
    /// but the abort is returned as a [`RoundError`] and the pool stays
    /// reusable for the next round ([`Runtime::try_run`] semantics).
    fn try_round<T: Send + 'static>(&mut self, jobs: Vec<Job<T>>) -> Result<Vec<T>, RoundError> {
        self.executed += 1;
        if jobs.is_empty() {
            return Ok(Vec::new());
        }
        let slots: Arc<Vec<Mutex<Option<T>>>> =
            Arc::new(jobs.iter().map(|_| Mutex::new(None)).collect());
        let fill = Arc::clone(&slots);
        self.rt
            .try_run(move |wk| {
                for (i, job) in jobs.into_iter().enumerate() {
                    let fill = Arc::clone(&fill);
                    wk.spawn(move |_wk| {
                        let v = job();
                        *fill[i].lock().unwrap() = Some(v);
                    });
                }
            })
            .map_err(|e| RoundError {
                message: e.to_string(),
            })?;
        slots
            .iter()
            .map(|m| {
                m.lock().unwrap().take().ok_or_else(|| RoundError {
                    message: "round job did not run".to_string(),
                })
            })
            .collect()
    }

    fn rounds_executed(&self) -> u64 {
        self.executed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pf_backend::SeqRounds;

    fn square_jobs(n: usize) -> Vec<Job<usize>> {
        (0..n).map(|i| Box::new(move || i * i) as Job<_>).collect()
    }

    #[test]
    fn pool_rounds_match_seq_rounds() {
        let mut seq = SeqRounds::new();
        let mut pool = PoolRounds::new(4);
        for n in [0usize, 1, 7, 64, 500] {
            assert_eq!(seq.round(square_jobs(n)), pool.round(square_jobs(n)));
        }
        assert_eq!(seq.rounds_executed(), pool.rounds_executed());
    }

    #[test]
    fn try_round_contains_a_panicking_job() {
        let mut pool = PoolRounds::new(3);
        let jobs: Vec<Job<u32>> = vec![
            Box::new(|| 1),
            Box::new(|| panic!("job bug")),
            Box::new(|| 3),
        ];
        let err = pool.try_round(jobs).unwrap_err();
        assert!(err.to_string().contains("job bug"), "{err}");
        // The same engine keeps serving rounds after the contained fault.
        let out = pool.try_round(square_jobs(8)).unwrap();
        assert_eq!(out, (0..8).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn many_rounds_on_warm_pool() {
        let mut pool = PoolRounds::new(2);
        for r in 0..100u64 {
            let out = pool.round(vec![Box::new(move || r) as Job<_>, Box::new(move || r + 1)]);
            assert_eq!(out, vec![r, r + 1]);
        }
        assert_eq!(pool.rounds_executed(), 100);
    }
}
