//! Deterministic fault injection for the runtime (`--cfg pf_chaos`).
//!
//! Built with `RUSTFLAGS="--cfg pf_chaos"`, this module arms three hook
//! points inside the scheduler — the same seam the `pf_rt::sync` shim
//! gives the model checker:
//!
//! * [`maybe_panic`] — at every task boundary (just before the task body
//!   runs, inside the worker's `catch_unwind`), modeling an application
//!   bug at an arbitrary point of the computation;
//! * [`maybe_delay`] — a short bounded spin at cell fulfill/touch and at
//!   the wakeup path, stretching the race windows the abort and
//!   lost-wakeup protocols must tolerate;
//! * [`steal_denied`] — forces `find_task` to skip a victim, modeling
//!   transient steal failure and pushing sessions through the park/unpark
//!   and watchdog paths far more often than a healthy pool would;
//! * [`maybe_wedge`] — parks a worker *inside* a task body (a bounded
//!   spin that also releases when the owning session aborts or the chaos
//!   config is reinstalled), modeling the mid-task wedge the progress-
//!   heartbeat stall detector exists to catch under load.
//!
//! Faults are drawn from a per-thread `splitmix64` stream derived from
//! the seed in [`ChaosConfig`], so a given seed produces a reproducible
//! fault *pattern* (modulo OS scheduling). Rates are per-10 000 draws;
//! [`injected_panics`] counts fired panic injections so tests can assert
//! "session failed ⇔ a fault was actually injected".
//!
//! **Zero-cost when off:** without `--cfg pf_chaos` every hook compiles
//! to an empty `#[inline(always)]` function and the config API does not
//! exist, so release binaries carry no branch, no atomic, and no static
//! for any of this (`cargo bench --no-run` builds identically).
//!
//! Do not combine with `--cfg pf_check`: chaos uses process-global std
//! synchronization that the model scheduler cannot see.

#[cfg(all(pf_chaos, pf_check))]
compile_error!("pf_chaos and pf_check are mutually exclusive cfgs");

#[cfg(pf_chaos)]
mod imp {
    use std::cell::Cell;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::{Mutex, OnceLock};

    /// Injection rates (per 10 000 draws) and the stream seed.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct ChaosConfig {
        /// Seed of the per-thread fault streams.
        pub seed: u64,
        /// Chance (per 10 000) that a task panics at its boundary.
        pub panic_per_10k: u32,
        /// Chance (per 10 000) of a bounded spin at a sync hook.
        pub delay_per_10k: u32,
        /// Length of an injected delay, in spin-loop hints.
        pub delay_spins: u32,
        /// Chance (per 10 000) that a steal attempt is denied.
        pub steal_fail_per_10k: u32,
        /// Chance (per 10 000) that a task wedges at its boundary: the
        /// worker spins inside the task body until the owning session
        /// aborts, the config is reinstalled/disarmed, or
        /// `wedge_hold_ms` elapses — whichever comes first, so a wedge
        /// can never hang a test.
        pub wedge_per_10k: u32,
        /// Upper bound of an injected wedge, in milliseconds.
        pub wedge_hold_ms: u32,
    }

    struct Global {
        cfg: Mutex<Option<ChaosConfig>>,
        /// Bumped by every `install`; threads re-read the config lazily.
        epoch: AtomicU64,
        panics: AtomicU64,
        wedges: AtomicU64,
        /// Distinguishes the per-thread streams of one seed.
        thread_seq: AtomicU64,
    }

    fn global() -> &'static Global {
        static G: OnceLock<Global> = OnceLock::new();
        G.get_or_init(|| Global {
            cfg: Mutex::new(None),
            epoch: AtomicU64::new(1),
            panics: AtomicU64::new(0),
            wedges: AtomicU64::new(0),
            thread_seq: AtomicU64::new(0),
        })
    }

    /// Install (or, with `None`, disarm) the process-wide chaos config.
    pub fn install(cfg: Option<ChaosConfig>) {
        let g = global();
        *g.cfg.lock().unwrap_or_else(|e| e.into_inner()) = cfg;
        g.epoch.fetch_add(1, Ordering::SeqCst);
    }

    /// Total panic injections fired since process start.
    pub fn injected_panics() -> u64 {
        global().panics.load(Ordering::SeqCst)
    }

    /// Total wedge injections fired since process start.
    pub fn injected_wedges() -> u64 {
        global().wedges.load(Ordering::SeqCst)
    }

    #[derive(Clone, Copy)]
    struct ThreadChaos {
        epoch: u64,
        cfg: Option<ChaosConfig>,
        rng: u64,
    }

    thread_local! {
        static TL: Cell<Option<ThreadChaos>> = const { Cell::new(None) };
    }

    fn splitmix(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Draw against `rate` per-10k from this thread's stream.
    fn roll(rate: impl Fn(&ChaosConfig) -> u32) -> Option<(ChaosConfig, bool)> {
        let g = global();
        let epoch = g.epoch.load(Ordering::SeqCst);
        TL.with(|tl| {
            let mut tc = match tl.get() {
                Some(tc) if tc.epoch == epoch => tc,
                _ => {
                    let cfg = *g.cfg.lock().unwrap_or_else(|e| e.into_inner());
                    let seq = g.thread_seq.fetch_add(1, Ordering::SeqCst);
                    let mut seed = cfg.map_or(0, |c| c.seed) ^ seq.wrapping_mul(0xA24BAED4963EE407);
                    let _ = splitmix(&mut seed);
                    ThreadChaos {
                        epoch,
                        cfg,
                        rng: seed,
                    }
                }
            };
            let out = tc.cfg.map(|cfg| {
                let r = rate(&cfg);
                let fired = r > 0 && splitmix(&mut tc.rng) % 10_000 < r as u64;
                (cfg, fired)
            });
            tl.set(Some(tc));
            out
        })
    }

    #[inline]
    pub fn maybe_panic() {
        if let Some((_, true)) = roll(|c| c.panic_per_10k) {
            global().panics.fetch_add(1, Ordering::SeqCst);
            panic!("pf-chaos: injected task panic");
        }
    }

    #[inline]
    pub fn maybe_delay() {
        if let Some((cfg, true)) = roll(|c| c.delay_per_10k) {
            for _ in 0..cfg.delay_spins {
                std::hint::spin_loop();
            }
        }
    }

    #[inline]
    pub fn steal_denied() -> bool {
        matches!(roll(|c| c.steal_fail_per_10k), Some((_, true)))
    }

    #[inline]
    pub fn maybe_wedge(released: &dyn Fn() -> bool) {
        if let Some((cfg, true)) = roll(|c| c.wedge_per_10k) {
            let g = global();
            g.wedges.fetch_add(1, Ordering::SeqCst);
            let entry_epoch = g.epoch.load(Ordering::SeqCst);
            let hold = std::time::Duration::from_millis(cfg.wedge_hold_ms as u64);
            let start = std::time::Instant::now();
            // Disarmable + bounded: an abort of the owning session, a
            // config reinstall, or the hold expiry all end the wedge.
            while !released() && g.epoch.load(Ordering::SeqCst) == entry_epoch {
                if start.elapsed() >= hold {
                    break;
                }
                std::hint::spin_loop();
            }
        }
    }
}

#[cfg(pf_chaos)]
pub use imp::{injected_panics, injected_wedges, install, ChaosConfig};

/// Maybe panic at a task boundary (chaos builds only; no-op otherwise).
#[inline(always)]
pub(crate) fn maybe_panic() {
    #[cfg(pf_chaos)]
    imp::maybe_panic();
}

/// Maybe spin briefly at a sync hook (chaos builds only; no-op otherwise).
#[inline(always)]
pub(crate) fn maybe_delay() {
    #[cfg(pf_chaos)]
    imp::maybe_delay();
}

/// Whether to deny this steal attempt (chaos builds only; always `false`
/// otherwise).
#[inline(always)]
pub(crate) fn steal_denied() -> bool {
    #[cfg(pf_chaos)]
    return imp::steal_denied();
    #[cfg(not(pf_chaos))]
    false
}

/// Maybe wedge inside a task body: spin until `released()` holds, the
/// chaos config changes, or the configured hold expires (chaos builds
/// only; no-op otherwise).
#[inline(always)]
pub(crate) fn maybe_wedge(released: &dyn Fn() -> bool) {
    #[cfg(pf_chaos)]
    imp::maybe_wedge(released);
    #[cfg(not(pf_chaos))]
    let _ = released;
}
