//! Runtime event tracing (`--features trace`): the pool-side half of
//! [`pf_trace`].
//!
//! # What is recorded
//!
//! Every scheduler transition of interest —
//! `{spawn, steal, exec, suspend, resume, fulfill, poison, park, unpark}`
//! — is recorded into a *lane* of the **owning session's** slot: each
//! [`SessionSlot`](crate::pool) carries its own [`SessionLanes`] (one
//! lane per worker plus a client lane), so concurrent sessions record
//! into disjoint lanes and a session's timeline contains exactly its own
//! events. All lanes of all sessions stamp against one monotonic clock —
//! the pool's epoch, captured at pool creation — so concurrent sessions'
//! timelines are mutually comparable.
//!
//! Attribution: a worker executing a task records into *that task's*
//! session (the worker's current slot). Steals are attributed to the
//! stolen task's session. Park/unpark happen outside any task, so they
//! are attributed to the session of the last task the worker ran — the
//! session whose dry spell put the worker to sleep — and dropped when
//! there is none. Abort-time poison events go to the aborting session's
//! client lane (the poison pass runs single-threadedly on the client).
//!
//! Each lane holds two things:
//!
//! * a fixed-capacity [`pf_trace::TraceRing`] — the timeline for
//!   [`pf_trace::SessionTrace::to_chrome_trace`]. When a session
//!   produces more events than the ring holds, the **oldest** are
//!   overwritten and the drop count says so; the export is a
//!   truncated-but-honest newest-events window;
//! * an exact per-kind counter array — the source of
//!   [`pf_trace::TraceStats`]. Counters never drop, so the summaries a
//!   test asserts on (steal counts, suspension counts, executed tasks)
//!   are exact even for sessions far larger than the ring.
//!
//! # Drain protocol
//!
//! Lanes are born empty with the slot at session start and drained
//! exactly once by the client when the session ends — on the abort path
//! *after* `finish_abort`, so the client's poison events are included.
//! There is no clear step: a slot's lanes never hold another session's
//! events. Each lane is a `Mutex<…>` padded to its own cache line: the
//! owner's push is an uncontended lock; the mutex makes the idle loop's
//! park/unpark events — recorded outside any task, possibly while the
//! attributed session is being drained — sound rather than merely
//! phase-separated.
//!
//! # Cost
//!
//! With the feature **off** (the default) every hook below compiles to
//! an empty `#[inline(always)]` function — no branch, no atomic, no
//! field in the slot; `results/BENCH_PR7.json` pins the no-regression
//! claim. With the feature **on**, a hook is one uncontended lock plus a
//! counter bump and a ring push (~a few tens of nanoseconds); the same
//! benchmark records the overhead honestly.
//!
//! Incompatible with `--cfg pf_check`: the model checker virtualizes
//! the sync layer and has no clock, so real `Instant` timestamps (and
//! real std mutexes on the lanes) would order nothing the checker can
//! see.

#[cfg(all(feature = "trace", pf_check))]
compile_error!(
    "feature \"trace\" is incompatible with --cfg pf_check: the model checker's \
     virtual clock cannot order real timestamps (same rule as pf_chaos)"
);

#[cfg(feature = "trace")]
pub(crate) use imp::SessionLanes;

/// Default per-lane ring capacity, in events — overridable per runtime
/// with [`RuntimeBuilder::trace_ring_cap`]. Sized so every behavioral
/// test and typical service session fits without wraparound (a
/// 2^11-node tree session records a few thousand events per worker);
/// larger sessions keep their newest `cap` events per lane and report
/// the drops (also surfaced in the Perfetto export metadata). Present
/// in every build so the builder's default needs no cfg.
///
/// [`RuntimeBuilder::trace_ring_cap`]: crate::RuntimeBuilder::trace_ring_cap
pub(crate) const DEFAULT_RING_CAP: usize = 1 << 14;

#[cfg(feature = "trace")]
mod imp {
    use std::sync::Mutex;
    use std::time::Instant;

    use pf_trace::{
        SessionTrace, TraceEvent, TraceKind, TraceRing, TraceStats, WorkerSummary, WorkerTrace,
        KIND_COUNT,
    };

    use crate::pool::lock;

    /// One worker's (or the client's) event lane, padded so the owner's
    /// pushes never share a cache line with a sibling's.
    #[repr(align(128))]
    struct Lane(Mutex<LaneState>);

    struct LaneState {
        ring: TraceRing,
        /// Exact per-kind counts — the rings drop, these never do.
        counts: [u64; KIND_COUNT],
    }

    /// One session's trace state, owned by its slot: a lane per worker
    /// plus a final client lane, stamping against the pool's clock.
    /// Lanes are born empty and drained once, at session end. Cheap to
    /// construct per session: a `TraceRing` allocates lazily on first
    /// push.
    pub(crate) struct SessionLanes {
        /// The pool's epoch — every session of a pool shares it, so
        /// concurrent sessions' timelines are mutually comparable.
        epoch: Instant,
        /// Session start, nanoseconds since the epoch (stamped at slot
        /// creation).
        start_ns: u64,
        lanes: Vec<Lane>,
        /// Per-lane ring capacity (builder knob); reported in exported
        /// timelines so a truncated trace is self-describing.
        ring_cap: usize,
    }

    impl SessionLanes {
        pub(crate) fn new(nthreads: usize, ring_cap: usize, epoch: Instant) -> SessionLanes {
            SessionLanes {
                epoch,
                start_ns: epoch.elapsed().as_nanos() as u64,
                lanes: (0..nthreads + 1)
                    .map(|_| {
                        Lane(Mutex::new(LaneState {
                            ring: TraceRing::new(ring_cap),
                            counts: [0; KIND_COUNT],
                        }))
                    })
                    .collect(),
                ring_cap,
            }
        }

        /// Nanoseconds since the pool epoch.
        #[inline]
        fn now_ns(&self) -> u64 {
            self.epoch.elapsed().as_nanos() as u64
        }

        /// Record `n` events of `kind` on `lane` (one timestamp draw).
        #[inline]
        pub(crate) fn record(&self, lane: usize, kind: TraceKind, arg: u64, n: u64) {
            let ts_ns = self.now_ns();
            let mut g = lock(&self.lanes[lane].0);
            g.counts[kind as usize] += n;
            for _ in 0..n {
                g.ring.push(TraceEvent { ts_ns, kind, arg });
            }
        }

        /// The client lane's index (abort-time poison events).
        #[inline]
        pub(crate) fn client_lane(&self) -> usize {
            self.lanes.len() - 1
        }

        /// Drain every lane into the session's trace and its exact
        /// summary (session end; on the abort path, after `finish_abort`
        /// so poison events are included), tagged with the session's
        /// scheduling-policy label.
        pub(crate) fn drain(&self, session: u64, policy: &str) -> (SessionTrace, TraceStats) {
            let mut take = |lane: &Lane| {
                let mut g = lock(&lane.0);
                let (events, dropped) = g.ring.drain();
                let counts = std::mem::replace(&mut g.counts, [0; KIND_COUNT]);
                (
                    WorkerTrace { events, dropped },
                    WorkerSummary { counts, dropped },
                )
            };
            let n = self.client_lane();
            let (workers, per_worker): (Vec<_>, Vec<_>) =
                self.lanes[..n].iter().map(&mut take).unzip();
            let (client_tr, client_sum) = take(&self.lanes[n]);
            (
                SessionTrace {
                    session,
                    start_ns: self.start_ns,
                    policy: policy.to_string(),
                    ring_capacity: self.ring_cap,
                    workers,
                    client: client_tr,
                },
                TraceStats {
                    session,
                    policy: policy.to_string(),
                    per_worker,
                    client: client_sum,
                },
            )
        }
    }
}

/// Record on the current session of `wk` — callable only from inside a
/// task (the worker's current slot is set).
#[cfg(feature = "trace")]
#[inline]
fn record(wk: &crate::scheduler::Worker, kind: pf_trace::TraceKind, arg: u64, n: u64) {
    wk.session().trace.record(wk.index(), kind, arg, n);
}

// ---- hook points (no-ops when the feature is off) -----------------------
//
// Placement mirrors the `WorkerStats` counters exactly, so the summed
// trace counts reconcile with `RunStats` (pinned by tests/trace.rs):
// Exec beside `add_tasks`, Spawn beside `add_spawns`, Steal beside
// `add_steals`, and Suspend only on the *committed* suspension path (the
// raced touch that un-notes its suspension records nothing).

/// `n` tasks spawned by `wk` (`spawn2` records two).
#[inline(always)]
pub(crate) fn spawn(_wk: &crate::scheduler::Worker, _n: u64) {
    #[cfg(feature = "trace")]
    record(_wk, pf_trace::TraceKind::Spawn, 0, _n);
}

/// `wk` stole `_n` tasks from worker `_victim` in one episode (1 under
/// steal-one; up to the batch cap under steal-half). Records `_n` Steal
/// events so the exact counts keep reconciling with
/// `RunStats::steals` = tasks obtained by stealing. Runs while `wk` is
/// *between* tasks, so the owning slot is passed explicitly (the slot of
/// the episode's first stolen task — under steal-half a batch can mix
/// sessions, a documented attribution approximation).
#[inline(always)]
pub(crate) fn steal(
    _wk: &crate::scheduler::Worker,
    _slot: &crate::pool::SessionSlot,
    _victim: usize,
    _n: u64,
) {
    #[cfg(feature = "trace")]
    _slot
        .trace
        .record(_wk.index(), pf_trace::TraceKind::Steal, _victim as u64, _n);
}

/// `wk` is about to execute a task body.
#[inline(always)]
pub(crate) fn exec(_wk: &crate::scheduler::Worker) {
    #[cfg(feature = "trace")]
    record(_wk, pf_trace::TraceKind::Exec, 0, 1);
}

/// A touch on `wk` committed a suspension into the cell at `_addr`.
#[inline(always)]
pub(crate) fn suspend(_wk: &crate::scheduler::Worker, _addr: usize) {
    #[cfg(feature = "trace")]
    record(_wk, pf_trace::TraceKind::Suspend, _addr as u64, 1);
}

/// A write on `wk` reactivated a suspended continuation of `_slot` (the
/// *waiter's* session — under cross-session fulfills, not the writer's).
#[inline(always)]
pub(crate) fn resume(_wk: &crate::scheduler::Worker, _slot: &crate::pool::SessionSlot) {
    #[cfg(feature = "trace")]
    _slot
        .trace
        .record(_wk.index(), pf_trace::TraceKind::Resume, 0, 1);
}

/// `wk` wrote the future cell at `_addr`.
#[inline(always)]
pub(crate) fn fulfill(_wk: &crate::scheduler::Worker, _addr: usize) {
    #[cfg(feature = "trace")]
    record(_wk, pf_trace::TraceKind::Fulfill, _addr as u64, 1);
}

/// `wk` found no work and is about to park its thread. Attributed to
/// `_slot`, the session of the last task this worker ran (whose dry
/// spell parked it); dropped when the worker has run nothing yet.
#[inline(always)]
pub(crate) fn park(_wk: &crate::scheduler::Worker, _slot: Option<&crate::pool::SessionSlot>) {
    #[cfg(feature = "trace")]
    if let Some(slot) = _slot {
        slot.trace
            .record(_wk.index(), pf_trace::TraceKind::Park, 0, 1);
    }
}

/// `wk`'s park returned (same attribution as [`park`]).
#[inline(always)]
pub(crate) fn unpark(_wk: &crate::scheduler::Worker, _slot: Option<&crate::pool::SessionSlot>) {
    #[cfg(feature = "trace")]
    if let Some(slot) = _slot {
        slot.trace
            .record(_wk.index(), pf_trace::TraceKind::Unpark, 0, 1);
    }
}

/// The abort cleanup poisoned the cell at `_addr` (the aborting slot's
/// client lane: the poison pass runs single-threadedly on the client).
#[inline(always)]
pub(crate) fn poison(_slot: &crate::pool::SessionSlot, _addr: usize) {
    #[cfg(feature = "trace")]
    _slot.trace.record(
        _slot.trace.client_lane(),
        pf_trace::TraceKind::Poison,
        _addr as u64,
        1,
    );
}
