//! A native Chase–Lev work-stealing deque (plus a mutexed injector),
//! replacing the external `crossbeam-deque` dependency.
//!
//! The implementation follows the C11 formulation of Lê, Pop, Cohen &
//! Zappa Nardelli, *Correct and Efficient Work-Stealing for Weak Memory
//! Models* (PPoPP '13): the owner pushes and pops at the **bottom** (LIFO,
//! the paper's stack discipline), thieves steal at the **top** (FIFO), and
//! the single contended decision — last-element races and steal claims —
//! is one `compare_exchange` on `top`.
//!
//! ## Memory reclamation without epochs
//!
//! When the ring buffer fills, the owner allocates a doubled buffer,
//! copies the live window, and publishes the new buffer pointer. A
//! concurrent thief may still read an element slot through the *old*
//! buffer pointer; its claim CAS on `top` decides ownership, and the bytes
//! it read stay valid because old buffers are **retired, not freed**: they
//! are kept on an owner-local list until the deque itself is dropped.
//! Because capacities double, the total retired memory is bounded by the
//! size of the final buffer, so this costs at most 2× the peak queue
//! footprint — a deliberate trade that avoids an epoch-GC dependency.
//! (Elements themselves are moved out exactly once, by whichever side wins
//! the claim; retirement only delays freeing the *slots*.)

use std::cell::UnsafeCell;
use std::collections::VecDeque;
use std::marker::PhantomData;
use std::mem::MaybeUninit;
use std::sync::Arc;

use crate::sync::atomic::{fence, AtomicIsize, AtomicPtr, AtomicUsize, Ordering};
use crate::sync::Mutex;

/// Result of a steal attempt (mirrors `crossbeam_deque::Steal`).
pub enum Steal<T> {
    /// A task was stolen.
    Success(T),
    /// The queue was observed empty.
    Empty,
    /// Lost a race; the caller may retry.
    Retry,
}

/// Fixed-capacity ring buffer; slots are `MaybeUninit` because ownership
/// of the element bytes is tracked by the `top`/`bottom` indices, not by
/// the buffer.
struct Buffer<T> {
    cap: usize,
    slots: *mut MaybeUninit<T>,
}

impl<T> Buffer<T> {
    fn alloc(cap: usize) -> *mut Buffer<T> {
        debug_assert!(cap.is_power_of_two());
        let mut v: Vec<MaybeUninit<T>> = Vec::with_capacity(cap);
        // SAFETY: MaybeUninit slots need no initialization.
        unsafe { v.set_len(cap) };
        let slots = Box::into_raw(v.into_boxed_slice()) as *mut MaybeUninit<T>;
        Box::into_raw(Box::new(Buffer { cap, slots }))
    }

    /// SAFETY: caller must own the buffer and all remaining element bytes
    /// must have been moved out already.
    unsafe fn free(ptr: *mut Buffer<T>) {
        let b = Box::from_raw(ptr);
        drop(Box::from_raw(std::ptr::slice_from_raw_parts_mut(
            b.slots, b.cap,
        )));
    }

    #[inline]
    unsafe fn write(&self, index: isize, value: T) {
        let slot = self.slots.add(index as usize & (self.cap - 1));
        (*slot).write(value);
    }

    /// Read the element bytes at `index`. May race with an owner
    /// overwrite; the caller must discard the result (via `forget`) unless
    /// its claim CAS succeeds.
    #[inline]
    unsafe fn read(&self, index: isize) -> T {
        let slot = self.slots.add(index as usize & (self.cap - 1));
        (*slot).assume_init_read()
    }
}

struct Inner<T> {
    /// Steal index; monotonically increasing. Claimed by CAS.
    top: AtomicIsize,
    /// Owner index; one past the last pushed element.
    bottom: AtomicIsize,
    /// Current ring buffer.
    buf: AtomicPtr<Buffer<T>>,
    /// Retired buffers (owner-touched only; freed on drop).
    retired: UnsafeCell<Vec<*mut Buffer<T>>>,
}

// SAFETY: the algorithm mediates all cross-thread access; `retired` is
// only touched by the unique owner handle (`LocalQueue` is !Sync and not
// Clone) and by `drop` when no other handle remains.
unsafe impl<T: Send> Send for Inner<T> {}
unsafe impl<T: Send> Sync for Inner<T> {}

impl<T> Drop for Inner<T> {
    fn drop(&mut self) {
        // Sole owner now: drop live elements, then all buffers.
        let t = self.top.load(Ordering::Relaxed);
        let b = self.bottom.load(Ordering::Relaxed);
        let buf = *self.buf.get_mut();
        for i in t..b {
            // SAFETY: window [top, bottom) holds initialized elements and
            // nobody else can claim them anymore.
            unsafe { drop((*buf).read(i)) };
        }
        // SAFETY: all elements moved out; buffers exclusively ours.
        unsafe {
            Buffer::free(buf);
            for old in self.retired.get_mut().drain(..) {
                Buffer::free(old);
            }
        }
    }
}

/// Owner handle: LIFO push/pop at the bottom. Exactly one per worker.
pub struct LocalQueue<T> {
    inner: Arc<Inner<T>>,
    /// !Sync: the owner operations are single-threaded by construction.
    _not_sync: PhantomData<*mut ()>,
}

// SAFETY: moving the unique owner handle to another thread is fine; only
// concurrent use from two threads is unsound, which !Sync prevents.
unsafe impl<T: Send> Send for LocalQueue<T> {}

/// Thief handle: FIFO steal at the top. Cloneable and shareable.
pub struct Stealer<T> {
    inner: Arc<Inner<T>>,
}

impl<T> Clone for Stealer<T> {
    fn clone(&self) -> Self {
        Stealer {
            inner: Arc::clone(&self.inner),
        }
    }
}

/// Initial ring capacity (slots); grows by doubling. Tiny under the model
/// checker so the grow path is reachable with a handful of model pushes.
#[cfg(not(pf_check))]
const INITIAL_CAP: usize = 256;
#[cfg(pf_check)]
const INITIAL_CAP: usize = 2;

/// Create a deque, returning the owner handle.
pub fn deque<T>() -> LocalQueue<T> {
    LocalQueue {
        inner: Arc::new(Inner {
            top: AtomicIsize::new(0),
            bottom: AtomicIsize::new(0),
            buf: AtomicPtr::new(Buffer::alloc(INITIAL_CAP)),
            retired: UnsafeCell::new(Vec::new()),
        }),
        _not_sync: PhantomData,
    }
}

impl<T> LocalQueue<T> {
    /// A thief handle for this deque.
    pub fn stealer(&self) -> Stealer<T> {
        Stealer {
            inner: Arc::clone(&self.inner),
        }
    }

    /// True when the deque holds no elements (owner's view).
    pub fn is_empty(&self) -> bool {
        let b = self.inner.bottom.load(Ordering::Relaxed);
        let t = self.inner.top.load(Ordering::Relaxed);
        b <= t
    }

    /// Push at the bottom (owner only).
    pub fn push(&self, value: T) {
        let inner = &*self.inner;
        let b = inner.bottom.load(Ordering::Relaxed);
        let t = inner.top.load(Ordering::Acquire);
        let mut buf = inner.buf.load(Ordering::Relaxed);
        // SAFETY: owner-exclusive access to bottom and the buffer pointer.
        unsafe {
            if b - t >= (*buf).cap as isize {
                buf = self.grow(b, t, buf);
            }
            (*buf).write(b, value);
        }
        inner.bottom.store(b + 1, Ordering::Release);
    }

    /// Double the buffer, copying the live window `[t, b)`; retires the
    /// old buffer (see module docs) and publishes the new one.
    ///
    /// SAFETY: owner only.
    unsafe fn grow(&self, b: isize, t: isize, old: *mut Buffer<T>) -> *mut Buffer<T> {
        let new = Buffer::alloc(((*old).cap * 2).max(INITIAL_CAP));
        for i in t..b {
            // Byte copy: ownership of each element stays with whichever
            // index range claims it; thieves racing on the old buffer read
            // the same bytes (see module docs).
            let slot_old = (*old).slots.add(i as usize & ((*old).cap - 1));
            let slot_new = (*new).slots.add(i as usize & ((*new).cap - 1));
            std::ptr::copy_nonoverlapping(slot_old, slot_new, 1);
        }
        (*self.inner.retired.get()).push(old);
        self.inner.buf.store(new, Ordering::Release);
        new
    }

    /// Pop at the bottom (owner only): LIFO.
    pub fn pop(&self) -> Option<T> {
        let inner = &*self.inner;
        let b = inner.bottom.load(Ordering::Relaxed) - 1;
        let buf = inner.buf.load(Ordering::Relaxed);
        inner.bottom.store(b, Ordering::Relaxed);
        fence(Ordering::SeqCst);
        let t = inner.top.load(Ordering::Relaxed);
        if t <= b {
            // Non-empty. SAFETY: slot `b` is initialized; thieves can
            // contend only when t == b, resolved by the CAS below.
            let v = unsafe { (*buf).read(b) };
            if t == b {
                // Last element: race the thieves for it.
                if inner
                    .top
                    .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed)
                    .is_err()
                {
                    // A thief claimed it; it owns the bytes we read.
                    std::mem::forget(v);
                    inner.bottom.store(b + 1, Ordering::Relaxed);
                    return None;
                }
                inner.bottom.store(b + 1, Ordering::Relaxed);
            }
            Some(v)
        } else {
            // Empty: restore bottom.
            inner.bottom.store(b + 1, Ordering::Relaxed);
            None
        }
    }
}

impl<T> Stealer<T> {
    /// True when the deque appears empty (thief's view; approximate).
    pub fn is_empty(&self) -> bool {
        let t = self.inner.top.load(Ordering::Acquire);
        fence(Ordering::SeqCst);
        let b = self.inner.bottom.load(Ordering::Acquire);
        b <= t
    }

    /// Try to steal the oldest element.
    pub fn steal(&self) -> Steal<T> {
        let inner = &*self.inner;
        let t = inner.top.load(Ordering::Acquire);
        fence(Ordering::SeqCst);
        let b = inner.bottom.load(Ordering::Acquire);
        if t < b {
            let buf = inner.buf.load(Ordering::Acquire);
            // Speculative read; only valid if the claim CAS succeeds (the
            // owner may concurrently pop/overwrite — then the CAS fails
            // and the possibly-torn bytes are discarded).
            let v = unsafe { (*buf).read(t) };
            if inner
                .top
                .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed)
                .is_err()
            {
                std::mem::forget(v);
                return Steal::Retry;
            }
            Steal::Success(v)
        } else {
            Steal::Empty
        }
    }
}

/// Upper bound on tasks moved by one [`Stealer::steal_half_into`] call,
/// so a batched steal from a very deep victim stays O(1)-ish and leaves
/// work for other thieves.
pub const MAX_STEAL_BATCH: usize = 16;

impl<T> Stealer<T> {
    /// Batched steal for the steal-half policy: observe the victim's
    /// length once, then claim up to `min(ceil(len/2), max)` elements.
    /// The **first** claimed element is returned in `Steal::Success`
    /// together with the count of *extra* elements, which were pushed
    /// onto `dst` (the thief's own deque) in victim-FIFO order.
    ///
    /// Each element is claimed by a complete [`Self::steal`] — a fresh
    /// `top` load, SeqCst fence, `bottom` load, and claim CAS per
    /// element — and the batch stops at the first `Empty`/`Retry`. A
    /// single CAS claiming a whole range against one stale `bottom`
    /// read would be unsound here: the owner's `pop` takes the last
    /// element *without* a CAS whenever its post-fence `top` load
    /// predates the thief's claim, so a range claim can double-claim
    /// slots the owner already popped. The win of steal-half is
    /// therefore scheduling granularity (one steal *episode* moves half
    /// the queue), not fewer atomics per element.
    pub fn steal_half_into(&self, dst: &LocalQueue<T>, max: usize) -> Steal<(T, usize)> {
        let inner = &*self.inner;
        let t = inner.top.load(Ordering::Acquire);
        fence(Ordering::SeqCst);
        let b = inner.bottom.load(Ordering::Acquire);
        let len = b - t;
        if len <= 0 {
            return Steal::Empty;
        }
        let want = (((len + 1) / 2) as usize).min(max.max(1));
        let first = match self.steal() {
            Steal::Success(v) => v,
            Steal::Empty => return Steal::Empty,
            Steal::Retry => return Steal::Retry,
        };
        let mut extra = 0;
        while extra + 1 < want {
            match self.steal() {
                Steal::Success(v) => {
                    dst.push(v);
                    extra += 1;
                }
                // The victim drained or we lost a race mid-batch: keep
                // what we already own.
                Steal::Empty | Steal::Retry => break,
            }
        }
        Steal::Success((first, extra))
    }
}

/// Global injection queue: tasks submitted from outside the worker pool
/// (the root task of each run). A plain mutexed queue — it is off the
/// per-task hot path (workers consult the cheap length counter first).
pub struct Injector<T> {
    queue: Mutex<VecDeque<T>>,
    len: AtomicUsize,
}

impl<T> Default for Injector<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Injector<T> {
    /// An empty injector.
    pub fn new() -> Self {
        Injector {
            queue: Mutex::new(VecDeque::new()),
            len: AtomicUsize::new(0),
        }
    }

    /// True when no task is queued (cheap: one atomic load).
    pub fn is_empty(&self) -> bool {
        self.len.load(Ordering::SeqCst) == 0
    }

    /// Enqueue a task.
    pub fn push(&self, value: T) {
        let mut q = self.queue.lock().unwrap();
        q.push_back(value);
        self.len.store(q.len(), Ordering::SeqCst);
    }

    /// Dequeue the oldest task.
    pub fn pop(&self) -> Option<T> {
        if self.is_empty() {
            return None;
        }
        let mut q = self.queue.lock().unwrap();
        let v = q.pop_front();
        self.len.store(q.len(), Ordering::SeqCst);
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn lifo_owner_order() {
        let q = deque::<u32>();
        for i in 0..10 {
            q.push(i);
        }
        for i in (0..10).rev() {
            assert_eq!(q.pop(), Some(i));
        }
        assert_eq!(q.pop(), None);
        assert!(q.is_empty());
    }

    #[test]
    fn fifo_steal_order() {
        let q = deque::<u32>();
        let s = q.stealer();
        for i in 0..4 {
            q.push(i);
        }
        assert!(!s.is_empty());
        match s.steal() {
            Steal::Success(v) => assert_eq!(v, 0),
            _ => panic!("steal failed on a populated deque"),
        }
        assert_eq!(q.pop(), Some(3));
    }

    #[test]
    fn growth_preserves_elements() {
        let q = deque::<usize>();
        let n = INITIAL_CAP * 4 + 3;
        for i in 0..n {
            q.push(i);
        }
        let mut got = Vec::new();
        while let Some(v) = q.pop() {
            got.push(v);
        }
        got.reverse();
        assert_eq!(got, (0..n).collect::<Vec<_>>());
    }

    #[test]
    fn drop_releases_undrained_elements() {
        // Arc payloads: leak detection via strong count.
        let payload = Arc::new(());
        let q = deque::<Arc<()>>();
        for _ in 0..100 {
            q.push(Arc::clone(&payload));
        }
        assert_eq!(Arc::strong_count(&payload), 101);
        drop(q);
        assert_eq!(Arc::strong_count(&payload), 1);
    }

    #[test]
    fn concurrent_steal_hammer() {
        // 4 thieves + owner popping; every pushed value claimed once.
        const N: u64 = 100_000;
        let q = deque::<u64>();
        let sum = Arc::new(AtomicU64::new(0));
        let claimed = Arc::new(AtomicU64::new(0));
        let stealers: Vec<_> = (0..4).map(|_| q.stealer()).collect();
        std::thread::scope(|scope| {
            for s in stealers {
                let sum = Arc::clone(&sum);
                let claimed = Arc::clone(&claimed);
                scope.spawn(move || loop {
                    match s.steal() {
                        Steal::Success(v) => {
                            sum.fetch_add(v, Ordering::Relaxed);
                            claimed.fetch_add(1, Ordering::Relaxed);
                        }
                        Steal::Empty => {
                            if claimed.load(Ordering::Acquire) >= N {
                                break;
                            }
                            std::hint::spin_loop();
                        }
                        Steal::Retry => {}
                    }
                });
            }
            for i in 0..N {
                q.push(i + 1);
                if i % 7 == 0 {
                    if let Some(v) = q.pop() {
                        sum.fetch_add(v, Ordering::Relaxed);
                        claimed.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
            // Owner drains what the thieves left.
            while let Some(v) = q.pop() {
                sum.fetch_add(v, Ordering::Relaxed);
                claimed.fetch_add(1, Ordering::Relaxed);
            }
        });
        assert_eq!(claimed.load(Ordering::Relaxed), N);
        assert_eq!(sum.load(Ordering::Relaxed), N * (N + 1) / 2);
    }

    #[test]
    fn steal_half_takes_older_half_in_order() {
        let q = deque::<u32>();
        let s = q.stealer();
        let thief = deque::<u32>();
        for i in 0..10 {
            q.push(i);
        }
        // len 10 → want 5: first returned, 4 pushed to the thief.
        match s.steal_half_into(&thief, MAX_STEAL_BATCH) {
            Steal::Success((first, extra)) => {
                assert_eq!(first, 0);
                assert_eq!(extra, 4);
            }
            _ => panic!("batched steal failed on a populated deque"),
        }
        // Thief's deque holds 1..=4 in victim-FIFO order (LIFO pop
        // returns them reversed).
        for i in (1..5).rev() {
            assert_eq!(thief.pop(), Some(i));
        }
        assert_eq!(thief.pop(), None);
        // Victim keeps the newer half, 5..10.
        for i in (5..10).rev() {
            assert_eq!(q.pop(), Some(i));
        }
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn steal_half_respects_max_and_singleton() {
        let q = deque::<u32>();
        let s = q.stealer();
        let thief = deque::<u32>();
        // Singleton: want = 1, no extras.
        q.push(7);
        match s.steal_half_into(&thief, MAX_STEAL_BATCH) {
            Steal::Success((first, extra)) => {
                assert_eq!((first, extra), (7, 0));
            }
            _ => panic!("singleton batched steal failed"),
        }
        assert!(matches!(
            s.steal_half_into(&thief, MAX_STEAL_BATCH),
            Steal::Empty
        ));
        // Deep queue: the cap bounds the batch.
        for i in 0..100 {
            q.push(i);
        }
        match s.steal_half_into(&thief, 4) {
            Steal::Success((first, extra)) => {
                assert_eq!(first, 0);
                assert_eq!(extra, 3);
            }
            _ => panic!("capped batched steal failed"),
        }
        // max = 0 is clamped to 1 rather than stealing nothing.
        match s.steal_half_into(&thief, 0) {
            Steal::Success((first, extra)) => {
                assert_eq!(first, 4);
                assert_eq!(extra, 0);
            }
            _ => panic!("zero-cap batched steal failed"),
        }
    }

    #[test]
    fn concurrent_steal_half_hammer() {
        // Batched thieves + owner push/pop across several grows: every
        // pushed value claimed exactly once, matching sum.
        const N: u64 = 100_000;
        let q = deque::<u64>();
        let sum = Arc::new(AtomicU64::new(0));
        let claimed = Arc::new(AtomicU64::new(0));
        let stealers: Vec<_> = (0..4).map(|_| q.stealer()).collect();
        std::thread::scope(|scope| {
            for s in stealers {
                let sum = Arc::clone(&sum);
                let claimed = Arc::clone(&claimed);
                scope.spawn(move || {
                    let mine = deque::<u64>();
                    loop {
                        match s.steal_half_into(&mine, MAX_STEAL_BATCH) {
                            Steal::Success((v, extra)) => {
                                let mut got = v;
                                let mut cnt = 1;
                                for _ in 0..extra {
                                    got += mine.pop().expect("batched extras in own deque");
                                    cnt += 1;
                                }
                                sum.fetch_add(got, Ordering::Relaxed);
                                claimed.fetch_add(cnt, Ordering::Relaxed);
                            }
                            Steal::Empty => {
                                if claimed.load(Ordering::Acquire) >= N {
                                    break;
                                }
                                std::hint::spin_loop();
                            }
                            Steal::Retry => {}
                        }
                        assert!(mine.is_empty());
                    }
                });
            }
            for i in 0..N {
                q.push(i + 1);
                if i % 7 == 0 {
                    if let Some(v) = q.pop() {
                        sum.fetch_add(v, Ordering::Relaxed);
                        claimed.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
            while let Some(v) = q.pop() {
                sum.fetch_add(v, Ordering::Relaxed);
                claimed.fetch_add(1, Ordering::Relaxed);
            }
        });
        assert_eq!(claimed.load(Ordering::Relaxed), N);
        assert_eq!(sum.load(Ordering::Relaxed), N * (N + 1) / 2);
    }

    #[test]
    fn steal_half_across_grow() {
        // Batched steal racing the owner's grow path: push far past
        // INITIAL_CAP while a thief batch-steals continuously.
        let q = deque::<usize>();
        let s = q.stealer();
        let n = INITIAL_CAP * 8;
        let stolen = Arc::new(AtomicU64::new(0));
        std::thread::scope(|scope| {
            let stolen2 = Arc::clone(&stolen);
            let done = Arc::new(AtomicU64::new(0));
            let done2 = Arc::clone(&done);
            scope.spawn(move || {
                let mine = deque::<usize>();
                loop {
                    match s.steal_half_into(&mine, MAX_STEAL_BATCH) {
                        Steal::Success((_, extra)) => {
                            while mine.pop().is_some() {}
                            stolen2.fetch_add(1 + extra as u64, Ordering::Relaxed);
                        }
                        Steal::Empty => {
                            if done2.load(Ordering::Acquire) == 1 {
                                break;
                            }
                            std::hint::spin_loop();
                        }
                        Steal::Retry => {}
                    }
                }
            });
            for i in 0..n {
                q.push(i);
            }
            done.store(1, Ordering::Release);
        });
        let mut owner_left = 0u64;
        while q.pop().is_some() {
            owner_left += 1;
        }
        assert_eq!(stolen.load(Ordering::Relaxed) + owner_left, n as u64);
    }

    #[test]
    fn injector_fifo() {
        let inj = Injector::new();
        assert!(inj.is_empty());
        inj.push(1);
        inj.push(2);
        assert!(!inj.is_empty());
        assert_eq!(inj.pop(), Some(1));
        assert_eq!(inj.pop(), Some(2));
        assert_eq!(inj.pop(), None);
    }
}
