//! Lock-free write-once future cells with in-cell continuation suspension.
//!
//! The state machine (one `AtomicU8`):
//!
//! ```text
//!   EMPTY ──write──────────────► FULL        (value published)
//!   EMPTY ──touch──► WAITING ──write──► FULL (waiter reactivated)
//! ```
//!
//! Linearity (§4 of the paper) guarantees at most one toucher, so a single
//! waiter slot suffices and every transition is one CAS or swap:
//!
//! * the **toucher** publishes its continuation with `EMPTY → WAITING`
//!   (release); if the CAS fails the cell filled concurrently and the
//!   continuation runs immediately;
//! * the **writer** publishes the value and swaps to `FULL` (AcqRel); if
//!   the previous state was `WAITING` it takes the waiter — made visible
//!   by the toucher's release CAS — and schedules it.
//!
//! The value itself stays in the cell (the waiter receives a clone), so
//! finished data structures can be inspected after the run with
//! [`FutRead::peek`] / [`FutRead::expect`].
//!
//! A suspended continuation is stored as **one** allocation: the box made
//! at touch time already captures the cell (an `Arc`) and clones the
//! value out when it runs, so the writer hands it to the scheduler as-is
//! instead of re-boxing it with the value (the old double allocation on
//! every suspension). The one cost of this shape: while a waiter sits in
//! a cell, the cell keeps itself alive through the waiter's `Arc`. The
//! cycle is broken whenever the waiter is taken out — every path of a run
//! that reaches quiescence — but if a run *aborts on a panic* with a
//! continuation still suspended, that cell and its waiter leak. That is
//! an accepted cost: an aborted run's pending graph is unreachable
//! garbage anyway, and the paper's model has no panics.

use std::cell::UnsafeCell;
use std::sync::Arc;

use crate::sync::atomic::{AtomicU8, Ordering};

use crate::scheduler::Worker;
use crate::task::Task;

const EMPTY: u8 = 0;
const WAITING: u8 = 1;
const FULL: u8 = 2;

/// A suspended continuation, pre-bound to its cell: calling it clones the
/// (by then published) value out and runs the user's closure.
type Waiter = Box<dyn FnOnce(&Worker) + Send>;

struct Inner<T> {
    state: AtomicU8,
    value: UnsafeCell<Option<T>>,
    waiter: UnsafeCell<Option<Waiter>>,
}

// SAFETY: access to the UnsafeCells is mediated by the state machine:
// `value` is written exactly once before the release transition to FULL and
// only read after an acquire load of FULL (or by the writer itself);
// `waiter` is written once before the release transition to WAITING and
// taken once after observing WAITING via the AcqRel swap to FULL (or taken
// back by the toucher itself when its CAS fails).
unsafe impl<T: Send> Send for Inner<T> {}
unsafe impl<T: Send> Sync for Inner<T> {}

/// The write pointer: consumed by [`FutWrite::fulfill`], so a cell is
/// written at most once by construction.
pub struct FutWrite<T> {
    inner: Arc<Inner<T>>,
}

/// The read pointer. Cloneable (result structures hold them); the paper's
/// linearity restriction — at most one *touch* — is asserted dynamically.
pub struct FutRead<T> {
    inner: Arc<Inner<T>>,
}

impl<T> Clone for FutRead<T> {
    fn clone(&self) -> Self {
        FutRead {
            inner: Arc::clone(&self.inner),
        }
    }
}

/// Create an empty future cell.
pub fn cell<T>() -> (FutWrite<T>, FutRead<T>) {
    let inner = Arc::new(Inner {
        state: AtomicU8::new(EMPTY),
        value: UnsafeCell::new(None),
        waiter: UnsafeCell::new(None),
    });
    (
        FutWrite {
            inner: Arc::clone(&inner),
        },
        FutRead { inner },
    )
}

/// Create an already-written cell (input construction).
pub fn ready<T>(value: T) -> FutRead<T> {
    FutRead {
        inner: Arc::new(Inner {
            state: AtomicU8::new(FULL),
            value: UnsafeCell::new(Some(value)),
            waiter: UnsafeCell::new(None),
        }),
    }
}

impl<T: Clone + Send + 'static> FutWrite<T> {
    /// Write the value; if a continuation is suspended in the cell, hand it
    /// a clone of the value as a new task on `worker`'s queue.
    pub fn fulfill(self, worker: &Worker, value: T) {
        // SAFETY: we are the unique writer (FutWrite is not Clone and is
        // consumed); no reader dereferences `value` until it observes FULL.
        unsafe { *self.inner.value.get() = Some(value) };
        match self.inner.state.swap(FULL, Ordering::AcqRel) {
            EMPTY => {}
            WAITING => {
                // SAFETY: WAITING was published by the toucher's release
                // CAS, so its waiter write happens-before our read; state is
                // now FULL, so no one else touches the slot.
                let waiter = unsafe { (*self.inner.waiter.get()).take() }
                    .expect("WAITING state without a waiter");
                // Waiter hand-off: the box allocated at touch time is
                // enqueued as-is — no re-boxing, no value capture. The
                // waiter reads the value from the cell when it runs; our
                // value write above happens-before that read through the
                // deque push/steal pair that delivers the task. Its
                // liveness unit was added by `note_suspend`, so this is a
                // transfer, not a spawn.
                worker.enqueue_transferred(Task::from_boxed(waiter));
            }
            _ => unreachable!("future cell written twice"),
        }
    }

    /// Write the value from outside the runtime (input construction only:
    /// panics if a continuation is already suspended, since there is no
    /// worker to hand it to).
    pub fn fulfill_outside(self, value: T) {
        unsafe { *self.inner.value.get() = Some(value) };
        match self.inner.state.swap(FULL, Ordering::AcqRel) {
            EMPTY => {}
            WAITING => panic!("fulfill_outside with a suspended waiter"),
            _ => unreachable!("future cell written twice"),
        }
    }
}

impl<T: Clone + Send + 'static> FutRead<T> {
    /// Touch the cell: run `cont` with the value — immediately (possibly
    /// inline) if written, or suspended in the cell until the write
    /// arrives. At most one touch per cell (the §4 linearity restriction);
    /// a second touch panics.
    pub fn touch(&self, worker: &Worker, cont: impl FnOnce(T, &Worker) + Send + 'static) {
        match self.inner.state.load(Ordering::Acquire) {
            FULL => {
                // SAFETY: FULL observed with acquire ⇒ value write visible.
                let v =
                    unsafe { (*self.inner.value.get()).clone() }.expect("FULL cell without value");
                worker.run_inline_or_spawn(v, cont);
            }
            WAITING => panic!("non-linear program: second touch of a future cell"),
            _ => {
                // Build the single-allocation waiter: it captures the
                // cell and clones the value out when it eventually runs
                // (by which point the cell is FULL — either published by
                // the writer's swap before it took the waiter, or
                // observed below on the failed CAS).
                let inner = Arc::clone(&self.inner);
                let waiter: Waiter = Box::new(move |wk: &Worker| {
                    // SAFETY: this closure only runs after FULL is
                    // established (see above); the value is never removed.
                    let v =
                        unsafe { (*inner.value.get()).clone() }.expect("FULL cell without value");
                    cont(v, wk);
                });
                // SAFETY: slot owned by the (sole) toucher until the CAS
                // below publishes it.
                unsafe { *self.inner.waiter.get() = Some(waiter) };
                worker.note_suspend();
                match self.inner.state.compare_exchange(
                    EMPTY,
                    WAITING,
                    Ordering::AcqRel,
                    Ordering::Acquire,
                ) {
                    Ok(_) => {} // suspended; the writer will reactivate us
                    Err(FULL) => {
                        // The write raced us: reclaim the continuation and
                        // run it now (the failed CAS's acquire load makes
                        // the value visible to the waiter's clone).
                        worker.unnote_suspend();
                        // SAFETY: state is FULL; the writer saw EMPTY and
                        // never reads the waiter slot; we own it.
                        let waiter =
                            unsafe { (*self.inner.waiter.get()).take() }.expect("waiter vanished");
                        worker.run_boxed_inline_or_spawn(waiter);
                    }
                    Err(WAITING) => {
                        panic!("non-linear program: concurrent second touch")
                    }
                    Err(_) => unreachable!(),
                }
            }
        }
    }

    /// Is the cell written?
    pub fn is_written(&self) -> bool {
        self.inner.state.load(Ordering::Acquire) == FULL
    }

    /// Clone the value out without a continuation, if written. Safe at any
    /// time; intended for inspecting finished structures after
    /// [`crate::Runtime::run`] returns.
    pub fn peek(&self) -> Option<T> {
        if self.inner.state.load(Ordering::Acquire) == FULL {
            // SAFETY: FULL observed with acquire ⇒ value write visible, and
            // the value is never removed from the slot.
            unsafe { (*self.inner.value.get()).clone() }
        } else {
            None
        }
    }

    /// [`FutRead::peek`], panicking on an unwritten cell.
    pub fn expect(&self) -> T {
        self.peek().expect("future cell not written")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Runtime;

    #[test]
    fn ready_cells() {
        let r = ready(5u32);
        assert!(r.is_written());
        assert_eq!(r.peek(), Some(5));
        assert_eq!(r.expect(), 5);
    }

    #[test]
    fn empty_peek_is_none() {
        let (_w, r) = cell::<u32>();
        assert!(!r.is_written());
        assert_eq!(r.peek(), None);
    }

    #[test]
    fn fulfill_outside_then_peek() {
        let (w, r) = cell::<String>();
        w.fulfill_outside("hi".into());
        assert_eq!(r.expect(), "hi");
    }

    #[test]
    fn write_before_touch_runs_inline() {
        let (w, r) = cell::<u32>();
        let (op, of) = cell::<u32>();
        let rt = Runtime::new(2);
        rt.run(move |wk| {
            w.fulfill(wk, 10);
            r.touch(wk, move |v, wk| op.fulfill(wk, v * 2));
        });
        assert_eq!(of.expect(), 20);
    }

    #[test]
    fn touch_before_write_suspends_and_wakes() {
        let (w, r) = cell::<u32>();
        let (op, of) = cell::<u32>();
        let rt = Runtime::new(2);
        rt.run(move |wk| {
            r.touch(wk, move |v, wk| op.fulfill(wk, v + 1));
            // The touch suspended (single worker path would otherwise
            // deadlock — quiescence counting keeps the runtime alive).
            wk.spawn(move |wk| w.fulfill(wk, 99));
        });
        assert_eq!(of.expect(), 100);
    }

    #[test]
    #[should_panic(expected = "non-linear")]
    fn second_touch_panics() {
        let (_w, r) = cell::<u32>();
        let r2 = r.clone();
        let rt = Runtime::new(1);
        rt.run(move |wk| {
            r.touch(wk, |_, _| {});
            r2.touch(wk, |_, _| {});
        });
    }

    #[test]
    fn hammer_racing_write_and_touch() {
        // Cross-thread race: producer and consumer race on many cells.
        for round in 0..200 {
            let n = 64;
            let cells: Vec<_> = (0..n).map(|_| cell::<usize>()).collect();
            let (writes, reads): (Vec<_>, Vec<_>) = cells.into_iter().unzip();
            let outs: Vec<_> = (0..n).map(|_| cell::<usize>()).collect();
            let (out_w, out_r): (Vec<_>, Vec<_>) = outs.into_iter().unzip();
            let rt = Runtime::new(4);
            rt.run(move |wk| {
                let mut out_w = out_w;
                for r in reads.into_iter() {
                    let ow = out_w.remove(0);
                    wk.spawn(move |wk| r.touch(wk, move |v, wk| ow.fulfill(wk, v * 3)));
                }
                for (i, w) in writes.into_iter().enumerate() {
                    wk.spawn(move |wk| w.fulfill(wk, i + round));
                }
            });
            for (i, o) in out_r.iter().enumerate() {
                assert_eq!(o.expect(), (i + round) * 3);
            }
        }
    }
}
