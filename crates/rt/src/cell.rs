//! Lock-free write-once future cells with in-cell continuation suspension.
//!
//! The state machine (one `AtomicU8`):
//!
//! ```text
//!   EMPTY ──write──────────────► FULL        (value published)
//!   EMPTY ──touch──► WAITING ──write──► FULL (waiter reactivated)
//! ```
//!
//! Linearity (§4 of the paper) guarantees at most one toucher, so a single
//! waiter slot suffices and every transition is one CAS or swap:
//!
//! * the **toucher** publishes its continuation with `EMPTY → WAITING`
//!   (release); if the CAS fails the cell filled concurrently and the
//!   continuation runs immediately;
//! * the **writer** publishes the value and swaps to `FULL` (AcqRel); if
//!   the previous state was `WAITING` it takes the waiter — made visible
//!   by the toucher's release CAS — and schedules it.
//!
//! The value itself stays in the cell (the waiter receives a clone), so
//! finished data structures can be inspected after the run with
//! [`FutRead::peek`] / [`FutRead::expect`].
//!
//! A suspended continuation is stored as **one** allocation: the box made
//! at touch time already captures the cell (an `Arc`) and clones the
//! value out when it runs, so the writer hands it to the scheduler as-is
//! instead of re-boxing it with the value (the old double allocation on
//! every suspension). While a waiter sits in a cell, the cell keeps
//! itself alive through the waiter's `Arc` — a deliberate cycle, broken
//! whenever the waiter is taken out. That happens on every path: a run
//! that reaches quiescence reactivates the waiter, and a session that
//! *aborts* (panic, cancel, deadline, stall) **poisons** the cell during
//! its abort cleanup — a fourth state, `POISONED`, entered only from
//! `WAITING` — which takes the waiter out and drops it, so nothing leaks.
//! A poisoned cell remembers why its session died
//! ([`FutRead::poison_info`]); any straggler touch or fulfill of it
//! panics immediately with that context instead of suspending on a value
//! that can never arrive. See the "Failure model" section of DESIGN.md.
//!
//! Under `--cfg pf_chaos` the fulfill/touch entry points also host the
//! chaos layer's delay hook (see [`crate::chaos`]); in normal builds the
//! hook compiles to nothing.

use std::cell::UnsafeCell;
use std::sync::Arc;

use crate::sync::atomic::{AtomicU8, AtomicUsize, Ordering};

use crate::error::{PoisonInfo, PoisonOutcome, PoisonTarget, StuckCell};
use crate::pool::{SessionSlot, SessionTask};
use crate::scheduler::Worker;
use crate::task::Task;

const EMPTY: u8 = 0;
const WAITING: u8 = 1;
const FULL: u8 = 2;
/// The cell's session aborted with a continuation suspended here; the
/// waiter was dropped and `Inner::poison` holds the failure context.
/// Terminal, entered only from `WAITING`, only by the aborting session's
/// cleanup pass.
const POISONED: u8 = 3;

fn state_name(s: u8) -> &'static str {
    match s {
        EMPTY => "EMPTY",
        WAITING => "WAITING",
        FULL => "FULL",
        POISONED => "POISONED",
        _ => "invalid",
    }
}

fn poison_desc(info: &Option<Arc<PoisonInfo>>) -> String {
    match info {
        Some(i) => i.to_string(),
        None => "poisoned (context missing)".to_string(),
    }
}

/// A suspended continuation, pre-bound to its cell: calling it clones the
/// (by then published) value out and runs the user's closure.
type Waiter = Box<dyn FnOnce(&Worker) + Send>;

struct Inner<T> {
    state: AtomicU8,
    value: UnsafeCell<Option<T>>,
    waiter: UnsafeCell<Option<Waiter>>,
    /// Index of the worker whose touch suspended here — the resume
    /// target under the mailbox policy. Written (Relaxed) by the toucher
    /// before its release CAS to WAITING publishes it; read (Relaxed) by
    /// the writer only after its AcqRel swap observed WAITING, so the
    /// CAS/swap pair orders the accesses.
    owner: AtomicUsize,
    /// The slot of the session whose touch suspended here: the waiter's
    /// accounting/abort identity, so a *cross-session* fulfill (a cell
    /// handed from one session to another through a shared structure)
    /// resumes the waiter into its own session, not the writer's. Same
    /// publication protocol as `waiter`: written by the toucher before
    /// the WAITING CAS, taken by whichever side wins the race out of
    /// WAITING (writer, failed-CAS toucher, or poison pass).
    session: UnsafeCell<Option<Arc<SessionSlot>>>,
    /// Why the cell was poisoned; written before the release transition
    /// to POISONED, read only after an acquire load of POISONED.
    poison: UnsafeCell<Option<Arc<PoisonInfo>>>,
}

impl<T: Send> PoisonTarget for Inner<T> {
    fn poison(&self, ctx: &Arc<PoisonInfo>) -> PoisonOutcome {
        // Publish the context before the state transition so any thread
        // that later observes POISONED (acquire) sees it.
        // SAFETY: written only by the aborting client; a concurrent
        // (cross-session) fulfill reads it only after observing POISONED
        // through the CAS below, never before it is published.
        unsafe { *self.poison.get() = Some(Arc::clone(ctx)) };
        match self
            .state
            .compare_exchange(WAITING, POISONED, Ordering::AcqRel, Ordering::Acquire)
        {
            Ok(_) => {
                // SAFETY: we won the transition out of WAITING, so we own
                // the waiter (and session) slots exactly like a writer
                // would. Dropping the waiter box releases the
                // continuation's captures and breaks the waiter→cell Arc
                // cycle — the "leak on abort" this state exists to
                // prevent. Its destructor must not wedge the cleanup.
                let waiter = unsafe { (*self.waiter.get()).take() };
                let session = unsafe { (*self.session.get()).take() };
                if let Some(w) = waiter {
                    let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| drop(w)));
                }
                drop(session);
                PoisonOutcome {
                    stuck: Some(StuckCell {
                        addr: self as *const Self as usize,
                        payload_type: std::any::type_name::<T>(),
                        kind: "cell",
                    }),
                    dropped: 1,
                }
            }
            Err(prev) => {
                // Nothing suspended here (the suspension raced to FULL
                // before the abort): withdraw the context again.
                // SAFETY: the state can never return to WAITING, so the
                // slot stays unobserved.
                if prev != POISONED {
                    unsafe { *self.poison.get() = None };
                }
                PoisonOutcome::none()
            }
        }
    }
}

// SAFETY: access to the UnsafeCells is mediated by the state machine:
// `value` is written exactly once before the release transition to FULL and
// only read after an acquire load of FULL (or by the writer itself);
// `waiter` is written once before the release transition to WAITING and
// taken once after observing WAITING via the AcqRel swap to FULL (or taken
// back by the toucher itself when its CAS fails).
unsafe impl<T: Send> Send for Inner<T> {}
unsafe impl<T: Send> Sync for Inner<T> {}

/// The write pointer: consumed by [`FutWrite::fulfill`], so a cell is
/// written at most once by construction.
pub struct FutWrite<T> {
    inner: Arc<Inner<T>>,
}

/// The read pointer. Cloneable (result structures hold them); the paper's
/// linearity restriction — at most one *touch* — is asserted dynamically.
pub struct FutRead<T> {
    inner: Arc<Inner<T>>,
}

impl<T> Clone for FutRead<T> {
    fn clone(&self) -> Self {
        FutRead {
            inner: Arc::clone(&self.inner),
        }
    }
}

/// Create an empty future cell.
pub fn cell<T>() -> (FutWrite<T>, FutRead<T>) {
    let inner = Arc::new(Inner {
        state: AtomicU8::new(EMPTY),
        value: UnsafeCell::new(None),
        waiter: UnsafeCell::new(None),
        owner: AtomicUsize::new(0),
        session: UnsafeCell::new(None),
        poison: UnsafeCell::new(None),
    });
    (
        FutWrite {
            inner: Arc::clone(&inner),
        },
        FutRead { inner },
    )
}

/// Create an already-written cell (input construction).
pub fn ready<T>(value: T) -> FutRead<T> {
    FutRead {
        inner: Arc::new(Inner {
            state: AtomicU8::new(FULL),
            value: UnsafeCell::new(Some(value)),
            waiter: UnsafeCell::new(None),
            owner: AtomicUsize::new(0),
            session: UnsafeCell::new(None),
            poison: UnsafeCell::new(None),
        }),
    }
}

impl<T: Clone + Send + 'static> FutWrite<T> {
    /// Write the value; if a continuation is suspended in the cell, hand it
    /// a clone of the value as a new task on `worker`'s queue.
    pub fn fulfill(self, worker: &Worker, value: T) {
        crate::chaos::maybe_delay();
        // The write is progress of the fulfilling session even when no
        // waiter is resumed by it — a long task fulfilling in a loop must
        // read as alive to the stall watchdog.
        worker.note_progress();
        crate::trace::fulfill(worker, Arc::as_ptr(&self.inner) as *const () as usize);
        // SAFETY: we are the unique writer (FutWrite is not Clone and is
        // consumed); no reader dereferences `value` until it observes FULL.
        unsafe { *self.inner.value.get() = Some(value) };
        match self.inner.state.swap(FULL, Ordering::AcqRel) {
            EMPTY => {}
            WAITING => {
                // SAFETY: WAITING was published by the toucher's release
                // CAS, so its waiter/session writes happen-before our
                // reads; state is now FULL, so no one else touches the
                // slots.
                let waiter = unsafe { (*self.inner.waiter.get()).take() }
                    .expect("WAITING state without a waiter");
                let session = unsafe { (*self.inner.session.get()).take() }
                    .expect("WAITING state without a session");
                // Waiter hand-off: the box allocated at touch time is
                // enqueued as-is — no re-boxing, no value capture. The
                // waiter reads the value from the cell when it runs; our
                // value write above happens-before that read through the
                // deque push/steal pair that delivers the task. Its
                // liveness unit was added by `note_suspend` on *its*
                // session (usually ours; the toucher's under cross-session
                // sharing), so this is a transfer, not a spawn. Where it
                // lands — fulfiller's deque, inline, or the suspender's
                // mailbox — is the waiter's session's resume policy.
                let owner = self.inner.owner.load(Ordering::Relaxed);
                worker.resume_transferred(
                    SessionTask {
                        session,
                        task: Task::from_boxed(waiter),
                    },
                    owner,
                );
            }
            POISONED => {
                // Restore the terminal state (the swap clobbered it),
                // then fail with the originating context.
                self.inner.state.store(POISONED, Ordering::SeqCst);
                // SAFETY: POISONED observed via the AcqRel swap ⇒ the
                // context write is visible; the slot is never modified
                // after POISONED is published.
                let info = unsafe { (*self.inner.poison.get()).clone() };
                panic!(
                    "fulfill of a poisoned future cell (session {}): {}",
                    worker.session_id(),
                    poison_desc(&info)
                );
            }
            _ => unreachable!("future cell written twice"),
        }
    }

    /// Write the value from outside the runtime (input construction only:
    /// panics if a continuation is already suspended, since there is no
    /// worker to hand it to).
    pub fn fulfill_outside(self, value: T) {
        unsafe { *self.inner.value.get() = Some(value) };
        match self.inner.state.swap(FULL, Ordering::AcqRel) {
            EMPTY => {}
            WAITING => panic!("fulfill_outside with a suspended waiter"),
            POISONED => {
                self.inner.state.store(POISONED, Ordering::SeqCst);
                // SAFETY: as in `fulfill`.
                let info = unsafe { (*self.inner.poison.get()).clone() };
                panic!(
                    "fulfill_outside of a poisoned future cell: {}",
                    poison_desc(&info)
                );
            }
            _ => unreachable!("future cell written twice"),
        }
    }
}

impl<T: Clone + Send + 'static> FutRead<T> {
    /// Touch the cell: run `cont` with the value — immediately (possibly
    /// inline) if written, or suspended in the cell until the write
    /// arrives. At most one touch per cell (the §4 linearity restriction);
    /// a second touch panics.
    pub fn touch(&self, worker: &Worker, cont: impl FnOnce(T, &Worker) + Send + 'static) {
        crate::chaos::maybe_delay();
        match self.inner.state.load(Ordering::Acquire) {
            FULL => {
                // SAFETY: FULL observed with acquire ⇒ value write visible.
                let v =
                    unsafe { (*self.inner.value.get()).clone() }.expect("FULL cell without value");
                worker.run_inline_or_spawn(v, cont);
            }
            WAITING => panic!(
                "non-linear program: second touch of a future cell \
                 (state=WAITING, session={}, cell={:p})",
                worker.session_id(),
                Arc::as_ptr(&self.inner),
            ),
            POISONED => {
                // SAFETY: POISONED observed with acquire ⇒ the context
                // write is visible and the slot is frozen.
                let info = unsafe { (*self.inner.poison.get()).clone() };
                panic!(
                    "touch of a poisoned future cell (session {}): {}",
                    worker.session_id(),
                    poison_desc(&info)
                );
            }
            _ => {
                // Build the single-allocation waiter: it captures the
                // cell and clones the value out when it eventually runs
                // (by which point the cell is FULL — either published by
                // the writer's swap before it took the waiter, or
                // observed below on the failed CAS).
                let inner = Arc::clone(&self.inner);
                let waiter: Waiter = Box::new(move |wk: &Worker| {
                    // SAFETY: this closure only runs after FULL is
                    // established (see above); the value is never removed.
                    let v =
                        unsafe { (*inner.value.get()).clone() }.expect("FULL cell without value");
                    cont(v, wk);
                });
                // SAFETY: slots owned by the (sole) toucher until the CAS
                // below publishes them.
                unsafe { *self.inner.waiter.get() = Some(waiter) };
                unsafe { *self.inner.session.get() = Some(worker.clone_session()) };
                // Record who is suspending (mailbox resume target);
                // published by the CAS below together with the waiter.
                self.inner.owner.store(worker.index(), Ordering::Relaxed);
                worker.note_suspend();
                match self.inner.state.compare_exchange(
                    EMPTY,
                    WAITING,
                    Ordering::AcqRel,
                    Ordering::Acquire,
                ) {
                    Ok(_) => {
                        // Suspended; the writer will reactivate us.
                        // Register with the executing worker so an abort
                        // of this session can poison the cell and reclaim
                        // the continuation (see pool.rs). Registration is
                        // a plain owner-local push; the weak ref dies with
                        // the cell, so completed cells cost nothing.
                        let weak = Arc::downgrade(&self.inner);
                        worker.register_suspend(weak);
                        crate::trace::suspend(
                            worker,
                            Arc::as_ptr(&self.inner) as *const () as usize,
                        );
                    }
                    Err(FULL) => {
                        // The write raced us: reclaim the continuation and
                        // run it now (the failed CAS's acquire load makes
                        // the value visible to the waiter's clone).
                        worker.unnote_suspend();
                        // SAFETY: state is FULL; the writer saw EMPTY and
                        // never reads the waiter/session slots; we own
                        // them.
                        let waiter =
                            unsafe { (*self.inner.waiter.get()).take() }.expect("waiter vanished");
                        unsafe { (*self.inner.session.get()) = None };
                        worker.run_boxed_inline_or_spawn(waiter);
                    }
                    Err(prev @ WAITING) | Err(prev @ POISONED) => {
                        panic!(
                            "non-linear program: concurrent second touch of a future cell \
                             (state={}, session={}, cell={:p})",
                            state_name(prev),
                            worker.session_id(),
                            Arc::as_ptr(&self.inner),
                        )
                    }
                    Err(_) => unreachable!(),
                }
            }
        }
    }

    /// Is the cell written?
    pub fn is_written(&self) -> bool {
        self.inner.state.load(Ordering::Acquire) == FULL
    }

    /// Clone the value out without a continuation, if written. Safe at any
    /// time; intended for inspecting finished structures after
    /// [`crate::Runtime::run`] returns.
    pub fn peek(&self) -> Option<T> {
        if self.inner.state.load(Ordering::Acquire) == FULL {
            // SAFETY: FULL observed with acquire ⇒ value write visible, and
            // the value is never removed from the slot.
            unsafe { (*self.inner.value.get()).clone() }
        } else {
            None
        }
    }

    /// [`FutRead::peek`], panicking on an unwritten cell — with the
    /// poison context when the cell's session aborted under it.
    pub fn expect(&self) -> T {
        match self.peek() {
            Some(v) => v,
            None => match self.poison_info() {
                Some(info) => panic!("future cell not written: {info}"),
                None => panic!("future cell not written"),
            },
        }
    }

    /// The failure context stamped into this cell when its session
    /// aborted with a continuation still suspended here; `None` for
    /// healthy cells. Safe at any time, like [`FutRead::peek`].
    pub fn poison_info(&self) -> Option<PoisonInfo> {
        if self.inner.state.load(Ordering::Acquire) == POISONED {
            // SAFETY: POISONED observed with acquire ⇒ the context write
            // is visible; the slot is never modified afterwards.
            unsafe { (*self.inner.poison.get()).as_deref().cloned() }
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Runtime;

    #[test]
    fn ready_cells() {
        let r = ready(5u32);
        assert!(r.is_written());
        assert_eq!(r.peek(), Some(5));
        assert_eq!(r.expect(), 5);
    }

    #[test]
    fn empty_peek_is_none() {
        let (_w, r) = cell::<u32>();
        assert!(!r.is_written());
        assert_eq!(r.peek(), None);
    }

    #[test]
    fn fulfill_outside_then_peek() {
        let (w, r) = cell::<String>();
        w.fulfill_outside("hi".into());
        assert_eq!(r.expect(), "hi");
    }

    #[test]
    fn write_before_touch_runs_inline() {
        let (w, r) = cell::<u32>();
        let (op, of) = cell::<u32>();
        let rt = Runtime::new(2);
        rt.run(move |wk| {
            w.fulfill(wk, 10);
            r.touch(wk, move |v, wk| op.fulfill(wk, v * 2));
        });
        assert_eq!(of.expect(), 20);
    }

    #[test]
    fn touch_before_write_suspends_and_wakes() {
        let (w, r) = cell::<u32>();
        let (op, of) = cell::<u32>();
        let rt = Runtime::new(2);
        rt.run(move |wk| {
            r.touch(wk, move |v, wk| op.fulfill(wk, v + 1));
            // The touch suspended (single worker path would otherwise
            // deadlock — quiescence counting keeps the runtime alive).
            wk.spawn(move |wk| w.fulfill(wk, 99));
        });
        assert_eq!(of.expect(), 100);
    }

    #[test]
    #[should_panic(expected = "non-linear")]
    fn second_touch_panics() {
        let (_w, r) = cell::<u32>();
        let r2 = r.clone();
        let rt = Runtime::new(1);
        rt.run(move |wk| {
            r.touch(wk, |_, _| {});
            r2.touch(wk, |_, _| {});
        });
    }

    #[test]
    fn hammer_racing_write_and_touch() {
        // Cross-thread race: producer and consumer race on many cells.
        for round in 0..200 {
            let n = 64;
            let cells: Vec<_> = (0..n).map(|_| cell::<usize>()).collect();
            let (writes, reads): (Vec<_>, Vec<_>) = cells.into_iter().unzip();
            let outs: Vec<_> = (0..n).map(|_| cell::<usize>()).collect();
            let (out_w, out_r): (Vec<_>, Vec<_>) = outs.into_iter().unzip();
            let rt = Runtime::new(4);
            rt.run(move |wk| {
                let mut out_w = out_w;
                for r in reads.into_iter() {
                    let ow = out_w.remove(0);
                    wk.spawn(move |wk| r.touch(wk, move |v, wk| ow.fulfill(wk, v * 3)));
                }
                for (i, w) in writes.into_iter().enumerate() {
                    wk.spawn(move |wk| w.fulfill(wk, i + round));
                }
            });
            for (i, o) in out_r.iter().enumerate() {
                assert_eq!(o.expect(), (i + round) * 3);
            }
        }
    }
}
