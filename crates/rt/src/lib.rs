//! # pf-rt — a real multicore runtime for fine-grained futures
//!
//! This crate implements the §4 runtime design of *Pipelining with
//! Futures* on actual OS threads:
//!
//! * **future cells** ([`mod@cell`]): write-once single-assignment cells. A
//!   touch of an unwritten cell stores the toucher's *continuation inside
//!   the cell* (the paper's "write a pointer to the thread's closure into
//!   the future cell and suspend"); the write reactivates it by spawning
//!   the continuation as a task. Linearity (§4) means at most one waiter
//!   per cell, so the cell is a single small state machine:
//!   `EMPTY → {WAITING → } FULL`, resolved with one atomic swap/CAS pair
//!   (implemented per *Rust Atomics and Locks*; a `Mutex`-based variant is
//!   kept as the ablation baseline, [`mutex_cell`]);
//! * a **work-stealing scheduler** ([`scheduler`]) on a **persistent
//!   worker pool** ([`pool`]): per-worker LIFO deques (the stack
//!   discipline the paper recommends for space) with stealing and a
//!   global injector, plus quiescence detection via a live-closure
//!   counter — the run ends when every spawned or suspended continuation
//!   has executed. Workers are spawned once per [`Runtime`] and parked
//!   between runs (spin → yield → park), so a `run` call costs one
//!   injector push and a wakeup, not a round of thread creation. Small
//!   spawned closures are stored inline in the [`task::Task`] payload and
//!   never touch the allocator.
//!
//! Algorithms are written in continuation-passing style: each paper-level
//! *touch* becomes one [`FutRead::touch`] with the rest of the function as
//! the continuation. Rust's `async` machinery is deliberately not used —
//! poll-based futures with per-task heap state are a poor match for
//! millions of single-assignment cells (see DESIGN.md).
//!
//! **Failure is a first-class outcome** ([`mod@error`]): a session that
//! panics, is cancelled via a [`CancelToken`], exceeds its [`Session`]
//! deadline, or stalls (cyclic touch) comes back from
//! [`Runtime::try_run`] as a [`SessionError`] value. The abort drains
//! every queued task, drops every suspended continuation (nothing
//! leaks), and poisons the cells that held them so straggler touches
//! fail fast with the originating context — the pool is immediately
//! reusable. A `--cfg pf_chaos` build arms deterministic fault injection
//! ([`mod@chaos`]) to stress exactly these paths.
//!
//! ```
//! use pf_rt::{cell, Runtime};
//!
//! let (w, r) = cell::<u64>();
//! let rt = Runtime::new(4);
//! rt.run(move |wk| {
//!     // producer
//!     wk.spawn(move |wk| {
//!         w.fulfill(wk, 41);
//!     });
//!     // consumer: suspends if the producer has not written yet
//!     r.touch(wk, |v, _wk| assert_eq!(v, 41));
//! });
//! ```

#![warn(missing_docs)]

pub mod backend;
pub mod cell;
pub mod chaos;
pub mod deque;
pub mod error;
pub mod mutex_cell;
pub mod policy;
pub mod pool;
pub mod rounds;
pub mod scheduler;
pub mod sync;
pub mod task;
pub mod trace;

pub use cell::{cell, ready, FutRead, FutWrite};

pub use error::{CancelToken, PoisonInfo, Session, SessionError, StallReport, StuckCell};
/// The trace data layer (`--features trace` only): event kinds, session
/// timelines, summaries, and the Perfetto export. Re-exported so users
/// of a traced runtime need not depend on `pf-trace` directly.
#[cfg(feature = "trace")]
pub use pf_trace::{SessionTrace, TraceEvent, TraceKind, TraceStats, WorkerSummary, WorkerTrace};
pub use policy::{ResumePlace, SchedPolicy, SpawnOrder, StealKind, VictimSelect};
pub use pool::RuntimeBuilder;
pub use rounds::PoolRounds;
pub use scheduler::{RunStats, Runtime, Worker};

// The engine-agnostic surface `Worker` implements (see `backend`):
// re-exported so runtime-side code can name the trait without a separate
// dependency.
pub use pf_backend::{Mode, PipeBackend};
