//! [`PipeBackend`] implementation for the real runtime: the five portable
//! primitives mapped onto the §4 work-stealing engine.
//!
//! Monomorphization makes generic CPS algorithms compile to exactly the
//! hand-written runtime code — every mapping below is a direct delegation,
//! with no wrapper state and no extra allocation:
//!
//! * `cell` → [`cell()`](crate::cell::cell) (one `Arc` allocation, same as
//!   before);
//! * `fulfill` → [`FutWrite::fulfill`] (atomic swap; reactivates a
//!   suspended waiter as a task);
//! * `touch` → [`FutRead::touch`] with an argument-order adapter
//!   `|v, wk| k(wk, v)`. The adapter is inlined into the continuation
//!   before it is ever boxed, so a suspending touch still costs the single
//!   waiter allocation of the hand-CPS code;
//! * `fork` → [`Worker::spawn`], `fork2` → [`Worker::spawn2`] (one round
//!   of liveness accounting for the two-child fan-out every tree node
//!   performs);
//! * `tick` / `flat` keep their no-op defaults — the cost hooks exist for
//!   the simulator and compile to nothing here;
//! * `strict` keeps its inline default: the runtime has no clocks to
//!   re-stamp, so pipelined and strict execution coincide (the modes only
//!   differ in the cost model);
//! * `peek` → [`FutRead::peek`] (post-run inspection of finished
//!   structures).

use pf_backend::{PipeBackend, Val};

use crate::cell::{cell, FutRead, FutWrite};
use crate::scheduler::Worker;

impl PipeBackend for Worker {
    type Fut<T: 'static> = FutRead<T>;
    type Wr<T: 'static> = FutWrite<T>;

    fn cell<T: Val>(&self) -> (FutWrite<T>, FutRead<T>) {
        cell()
    }

    fn fulfill<T: Val>(&self, w: FutWrite<T>, value: T) {
        w.fulfill(self, value);
    }

    fn touch<T: Val>(&self, f: &FutRead<T>, k: impl FnOnce(&Self, T) + Send + 'static) {
        f.touch(self, move |v, wk| k(wk, v));
    }

    fn fork(&self, body: impl FnOnce(&Self) + Send + 'static) {
        self.spawn(body);
    }

    fn fork2(
        &self,
        f: impl FnOnce(&Self) + Send + 'static,
        g: impl FnOnce(&Self) + Send + 'static,
    ) {
        self.spawn2(f, g);
    }

    fn peek<T: Val>(f: &FutRead<T>) -> Option<T> {
        f.peek()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Runtime;

    /// The trait-level producer/consumer roundtrip, including a suspension:
    /// the consumer touches before the producer writes.
    #[test]
    fn trait_touch_suspends_and_wakes() {
        let rt = Runtime::new(2);
        let (out_w, out_r) = cell::<u64>();
        rt.run(move |wk| {
            let (w, r) = PipeBackend::cell::<u64>(wk);
            PipeBackend::touch(wk, &r, move |wk, v| PipeBackend::fulfill(wk, out_w, v + 1));
            PipeBackend::fork(wk, move |wk| PipeBackend::fulfill(wk, w, 41));
        });
        assert_eq!(out_r.expect(), 42);
    }

    #[test]
    fn trait_fork2_runs_both() {
        let rt = Runtime::new(4);
        let (aw, ar) = cell::<u32>();
        let (bw, br) = cell::<u32>();
        rt.run(move |wk| {
            PipeBackend::fork2(
                wk,
                move |wk| PipeBackend::fulfill(wk, aw, 1),
                move |wk| PipeBackend::fulfill(wk, bw, 2),
            );
        });
        assert_eq!((ar.expect(), br.expect()), (1, 2));
    }

    #[test]
    fn trait_ready_and_cost_hooks() {
        let rt = Runtime::new(1);
        let (ow, or) = cell::<String>();
        rt.run(move |wk| {
            PipeBackend::tick(wk, 1_000); // compiles to nothing
            PipeBackend::flat(wk, 1_000);
            let f = PipeBackend::ready(wk, "hi".to_string());
            assert_eq!(<Worker as PipeBackend>::peek(&f), Some("hi".to_string()));
            PipeBackend::strict(wk, move |wk| {
                PipeBackend::touch(wk, &f, move |wk, v| PipeBackend::fulfill(wk, ow, v));
            });
        });
        assert_eq!(or.expect(), "hi");
    }
}
