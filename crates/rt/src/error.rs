//! First-class session failure: the error surface of [`Runtime::try_run`]
//! and the cancellation/poisoning machinery behind it.
//!
//! The paper's cost model has no panics; a long-running service does. This
//! module makes a failed session a *recoverable value* instead of a
//! process-wide unwind:
//!
//! * [`SessionError`] — why a session ended abnormally: a task panicked,
//!   the session was cancelled, its deadline expired, or the pool stalled
//!   (every worker parked with live suspended continuations — a cyclic
//!   touch or a lost wakeup).
//! * [`CancelToken`] — a cloneable handle that cooperatively aborts the
//!   session it is registered with; [`Session`] carries it (and an
//!   optional deadline) into [`Runtime::try_run_session`].
//! * [`PoisonInfo`] — the context stamped into every future cell whose
//!   continuation was still suspended when its session aborted. A
//!   straggler touch of a poisoned cell fails fast with the *originating*
//!   failure instead of deadlocking on a value that will never arrive.
//!
//! [`Runtime::try_run`]: crate::Runtime::try_run
//! [`Runtime::try_run_session`]: crate::Runtime::try_run_session

use std::any::Any;
use std::fmt;
use std::sync::{Arc, Weak};
use std::time::Duration;

use crate::sync::atomic::{AtomicBool, Ordering};
use crate::sync::Mutex;

use crate::pool::{AbortReason, SessionSlot};

/// Why a session ended abnormally. Returned by
/// [`Runtime::try_run`](crate::Runtime::try_run); every variant leaves the
/// pool reusable — queued tasks were drained, suspended continuations were
/// dropped, and their cells poisoned.
pub enum SessionError {
    /// A task panicked. The abort rendezvous drained the session and this
    /// carries the original panic payload (first panic wins).
    Panicked {
        /// Id of the aborted session.
        session: u64,
        /// The original panic payload, as `catch_unwind` caught it.
        payload: Box<dyn Any + Send>,
    },
    /// The session's [`CancelToken`] fired.
    Cancelled {
        /// Id of the cancelled session.
        session: u64,
    },
    /// The session's deadline expired before quiescence.
    DeadlineExceeded {
        /// Id of the aborted session.
        session: u64,
        /// The deadline that was set.
        deadline: Duration,
    },
    /// The quiescence watchdog found the pool stalled: every worker parked,
    /// no task queued anywhere, but live suspended continuations remain —
    /// a cyclic touch chain or a dropped write. Previously this state
    /// deadlocked forever; now it aborts with the stuck cell set.
    Stalled {
        /// Id of the aborted session.
        session: u64,
        /// What was stuck: liveness count and the poisoned cells.
        report: StallReport,
    },
}

/// Diagnostic payload of [`SessionError::Stalled`].
#[derive(Debug, Clone, Default)]
pub struct StallReport {
    /// Id of the stalled session (same as the error's `session` field,
    /// repeated here so the report is self-contained when logged alone).
    pub session: u64,
    /// Value of the live-closure counter at detection time (number of
    /// continuations that were queued, running, or suspended — under the
    /// provable and default heartbeat detectors all of them are
    /// suspended; an explicit [`Session::stall_budget`] also catches a
    /// *running* wedge, where some are not).
    pub live: usize,
    /// The session's last progress epoch — the value that froze.
    pub epoch: u64,
    /// Consecutive watchdog samples that saw the epoch frozen.
    pub frozen: u32,
    /// Wall-clock length of the freeze at detection time.
    pub frozen_for: Duration,
    /// The cells whose suspended continuations were drained and dropped at
    /// the abort rendezvous.
    pub stuck: Vec<StuckCell>,
}

/// One cell that still held a suspended continuation when its session
/// aborted.
#[derive(Debug, Clone)]
pub struct StuckCell {
    /// Address of the cell's shared state (stable for the cell's lifetime;
    /// correlate with logs or a debugger).
    pub addr: usize,
    /// `type_name` of the cell's payload type.
    pub payload_type: &'static str,
    /// Which cell implementation: `"cell"` (lock-free) or `"mutex_cell"`.
    pub kind: &'static str,
}

impl fmt::Display for StuckCell {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}<{}>@{:#x}", self.kind, self.payload_type, self.addr)
    }
}

/// Best-effort human-readable rendering of a panic payload (`&str` and
/// `String` payloads — i.e. every `panic!` with a message — are shown
/// verbatim).
pub fn panic_message(payload: &(dyn Any + Send)) -> &str {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        s
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.as_str()
    } else {
        "<non-string panic payload>"
    }
}

impl SessionError {
    /// Id of the session this error aborted.
    pub fn session(&self) -> u64 {
        match self {
            SessionError::Panicked { session, .. }
            | SessionError::Cancelled { session }
            | SessionError::DeadlineExceeded { session, .. }
            | SessionError::Stalled { session, .. } => *session,
        }
    }

    /// The panic message, when this is [`SessionError::Panicked`] with a
    /// string payload.
    pub fn panic_message(&self) -> Option<&str> {
        match self {
            SessionError::Panicked { payload, .. } => Some(panic_message(payload.as_ref())),
            _ => None,
        }
    }

    /// Re-raise the failure on the calling thread:
    /// [`std::panic::resume_unwind`] with the original payload for
    /// [`SessionError::Panicked`], a plain `panic!` describing the error
    /// otherwise. This is how [`Runtime::run`](crate::Runtime::run) keeps
    /// its propagate-the-panic contract on top of `try_run`.
    pub fn resume(self) -> ! {
        match self {
            SessionError::Panicked { payload, .. } => std::panic::resume_unwind(payload),
            other => panic!("{other}"),
        }
    }

    /// The one-line poison context stamped into cells this abort orphaned.
    pub(crate) fn describe_reason(reason: &AbortReason) -> String {
        match reason {
            AbortReason::Panic(payload) => {
                format!("task panicked: {}", panic_message(payload.as_ref()))
            }
            AbortReason::Cancelled => "session cancelled".into(),
            AbortReason::Deadline(d) => format!("deadline of {d:?} exceeded"),
            AbortReason::Stalled {
                live,
                epoch,
                frozen,
                frozen_for,
            } => {
                format!(
                    "session stalled with {live} live unit(s), progress epoch \
                     {epoch} frozen for ~{frozen_for:?} ({frozen} samples)"
                )
            }
        }
    }
}

impl fmt::Display for SessionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SessionError::Panicked { session, payload } => write!(
                f,
                "session {session} panicked: {}",
                panic_message(payload.as_ref())
            ),
            SessionError::Cancelled { session } => write!(f, "session {session} cancelled"),
            SessionError::DeadlineExceeded { session, deadline } => {
                write!(f, "session {session} exceeded its deadline of {deadline:?}")
            }
            SessionError::Stalled { session, report } => {
                write!(
                    f,
                    "session {session} stalled: {} live unit(s), progress epoch {} \
                     frozen for ~{:?} ({} samples), stuck cells: [",
                    report.live, report.epoch, report.frozen_for, report.frozen
                )?;
                for (i, c) in report.stuck.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{c}")?;
                }
                write!(f, "]")
            }
        }
    }
}

// The payload of `Panicked` is not `Debug`, so a derived impl is
// unavailable; one canonical rendering also keeps test assertions simple.
impl fmt::Debug for SessionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl std::error::Error for SessionError {}

/// The failure context stamped into a future cell when its session aborted
/// while a continuation was suspended in it. Any later touch of the cell
/// panics with this context (see the cell docs); [`FutRead::poison_info`]
/// exposes it for inspection.
///
/// [`FutRead::poison_info`]: crate::FutRead::poison_info
#[derive(Debug, Clone)]
pub struct PoisonInfo {
    /// The session whose abort poisoned the cell.
    pub session: u64,
    /// One-line description of why that session aborted.
    pub reason: String,
}

impl fmt::Display for PoisonInfo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "poisoned by aborted session {}: {}",
            self.session, self.reason
        )
    }
}

/// What [`PoisonTarget::poison`] did: the stuck-cell description (when the
/// cell still held suspended continuations of the aborting session) and
/// how many of that session's waiters were dropped — the aborting client
/// retires one liveness unit per dropped waiter.
pub(crate) struct PoisonOutcome {
    pub(crate) stuck: Option<StuckCell>,
    pub(crate) dropped: u64,
}

impl PoisonOutcome {
    pub(crate) fn none() -> Self {
        PoisonOutcome {
            stuck: None,
            dropped: 0,
        }
    }
}

/// Something an abort cleanup can poison: a future cell that may hold a
/// suspended continuation. Implemented by both cell flavors; each session's
/// slot keeps a registry of `Weak` references to every cell a touch of that
/// session suspended into (see `pool.rs`).
pub(crate) trait PoisonTarget: Send + Sync {
    /// Drop any continuation of session `ctx.session` still suspended
    /// here, stamp `ctx`, and report what happened; do nothing when no
    /// such continuation remains (it was fulfilled after registration, or
    /// belongs to a different session — the multi-waiter mutex cell keeps
    /// other sessions' waiters and stays usable for them). Called only by
    /// the aborting session's client, after that session has no queued or
    /// running task left (only suspended units), so no worker can race a
    /// fulfill of *this session's* waiters; cross-session fulfills may
    /// race and are arbitrated by the cell's own synchronization.
    fn poison(&self, ctx: &Arc<PoisonInfo>) -> PoisonOutcome;
}

/// Options for one session: an optional deadline and an optional
/// [`CancelToken`]. Passed to
/// [`Runtime::try_run_session`](crate::Runtime::try_run_session).
///
/// ```
/// use std::time::Duration;
/// use pf_rt::{Runtime, Session};
///
/// let rt = Runtime::new(2);
/// let stats = rt
///     .try_run_session(Session::new().deadline(Duration::from_secs(5)), |wk| {
///         wk.spawn(|_| { /* ... */ });
///     })
///     .expect("finished well inside the deadline");
/// assert_eq!(stats.spawns, 1);
/// ```
#[derive(Default, Clone)]
pub struct Session {
    pub(crate) deadline: Option<Duration>,
    pub(crate) cancel: Option<CancelToken>,
    pub(crate) policy: Option<crate::SchedPolicy>,
    pub(crate) stall: Option<Duration>,
}

impl Session {
    /// A session with no deadline and no cancel token (the
    /// [`Runtime::try_run`](crate::Runtime::try_run) default).
    pub fn new() -> Self {
        Session::default()
    }

    /// Bound the session's wall-clock duration: when it expires before
    /// quiescence the session aborts with
    /// [`SessionError::DeadlineExceeded`]. Enforcement is cooperative —
    /// running tasks finish their current closure (poll
    /// [`Worker::cancelled`](crate::Worker::cancelled) inside long ones);
    /// queued and suspended continuations are dropped at the rendezvous.
    /// (Inert under the model checker, which has no clock.)
    pub fn deadline(mut self, d: Duration) -> Self {
        self.deadline = Some(d);
        self
    }

    /// Attach a cancel token: [`CancelToken::cancel`] aborts this session
    /// with [`SessionError::Cancelled`] from any thread.
    pub fn cancel_token(mut self, t: &CancelToken) -> Self {
        self.cancel = Some(t.clone());
        self
    }

    /// Set the session's stall-detection budget: the watchdog declares
    /// [`SessionError::Stalled`] once the session's progress epoch (one
    /// tick per scheduler event attributed to the session — exec, spawn,
    /// suspend, resume, fulfill) stays frozen for `budget` while live
    /// units remain, no matter how busy sibling sessions keep the pool.
    ///
    /// Without an explicit budget, a session whose remaining units are
    /// all *suspended* still gets heartbeat detection under a generous
    /// default, and a provably-wedged idle pool is detected within a few
    /// milliseconds; but a *running* wedge — a task body spinning
    /// forever — is left to the deadline, because a frozen epoch under a
    /// running task also describes a long, legitimate compute-only
    /// closure. Setting a budget is the caller's assertion that no legal
    /// closure of this session goes `budget` without a scheduler event,
    /// which arms the detector for running wedges too. (Inert under the
    /// model checker, which has no clock.)
    pub fn stall_budget(mut self, budget: Duration) -> Self {
        self.stall = Some(budget);
        self
    }

    /// Run this session under `policy` instead of the runtime's default
    /// scheduling policy (see [`SchedPolicy`](crate::SchedPolicy)). The
    /// policy is fixed for the whole session; it is installed at session
    /// start, while the pool is quiescent.
    pub fn policy(mut self, p: crate::SchedPolicy) -> Self {
        self.policy = Some(p);
        self
    }
}

pub(crate) struct CancelInner {
    flag: AtomicBool,
    /// The slot of the session currently registered with this token.
    /// Registered by `try_run_session` at session start, cleared at
    /// session end; a `Weak` to the *slot* (not the pool), so a stale
    /// token holds nothing a later session could be confused with — and
    /// even a race with session end lands in the slot's own closed-abort
    /// check and no-ops.
    target: Mutex<Option<Weak<SessionSlot>>>,
}

/// A cloneable cancellation handle for one session.
///
/// Create it, attach it with [`Session::cancel_token`], hand clones to
/// whoever should be able to abort the session (a signal handler, an admin
/// endpoint, a client-disconnect watcher), and call [`CancelToken::cancel`]
/// at any time — before the session starts (it then fails fast) or while it
/// runs (it aborts at the next task boundary).
#[derive(Clone)]
pub struct CancelToken {
    pub(crate) inner: Arc<CancelInner>,
}

impl Default for CancelToken {
    fn default() -> Self {
        CancelToken::new()
    }
}

impl CancelToken {
    /// A fresh, unfired token.
    pub fn new() -> Self {
        CancelToken {
            inner: Arc::new(CancelInner {
                flag: AtomicBool::new(false),
                target: Mutex::new(None),
            }),
        }
    }

    /// Request cancellation of the session this token is registered with
    /// (idempotent; safe from any thread, including before the session
    /// starts). Running tasks are not preempted — they finish their current
    /// closure; everything queued or suspended is dropped at the abort
    /// rendezvous and the session returns [`SessionError::Cancelled`].
    pub fn cancel(&self) {
        self.inner.flag.store(true, Ordering::SeqCst);
        let target = crate::pool::lock(&self.inner.target).clone();
        if let Some(slot) = target.and_then(|w| w.upgrade()) {
            slot.request_abort(AbortReason::Cancelled);
        }
    }

    /// Has [`CancelToken::cancel`] been called?
    pub fn is_cancelled(&self) -> bool {
        self.inner.flag.load(Ordering::SeqCst)
    }

    /// Register this token with a live session's slot (session start).
    pub(crate) fn register(&self, slot: &Arc<SessionSlot>) {
        *crate::pool::lock(&self.inner.target) = Some(Arc::downgrade(slot));
    }

    /// Detach from the session (session end, any outcome).
    pub(crate) fn unregister(&self) {
        *crate::pool::lock(&self.inner.target) = None;
    }
}
