//! Persistent worker pool with a session table and exact per-session
//! quiescence detection.
//!
//! [`Runtime::new`] spawns its workers **once**; every [`Runtime::run`]
//! call is a *session* on the same pool, so the per-run cost is one
//! injector push plus one wakeup instead of N thread creations and joins.
//! Workers never exit between sessions — they park and are reused — and
//! **any number of sessions may run concurrently**: each client thread
//! calling [`Runtime::try_run_session`] co-executes with the others on
//! the same workers, with per-session fault containment.
//!
//! # The session table
//!
//! A session's entire mutable state lives in one [`SessionSlot`],
//! allocated at session start and shared (`Arc`) by everything that acts
//! on the session's behalf: every queued task carries its slot (a
//! [`SessionTask`] is a [`Task`] plus the owning `Arc`), every suspended
//! continuation stores it in its cell, the client holds it while
//! waiting, and cancel tokens hold a `Weak`. The pool itself keeps only
//! a `Weak` registry of slots (diagnostics); a slot dies with its last
//! task — there is no per-session cleanup of pool state because there is
//! no per-session pool state.
//!
//! Slot contents: the session id, the packed liveness counter (below),
//! the scheduling-policy word, the abort slot (open flag + first filed
//! reason), the done flag + condvar the client blocks on, the poison
//! registry of suspended cells, per-worker statistics, and (in tracing
//! builds) the session's event lanes.
//!
//! # Per-session quiescence
//!
//! The slot's `units` word packs two 32-bit counters, updated together
//! in one RMW:
//!
//! * **low half** — closures of this session that are queued, running,
//!   or suspended in a future cell (the paper's live count);
//! * **high half** — the suspended subset of those.
//!
//! Spawning adds a unit; a touch that suspends adds a unit and marks it
//! suspended; a write that reactivates a waiter clears the suspended
//! mark *before* the task is pushed (so `low - high`, the number of
//! units that are queued or running, never transiently undercounts);
//! finishing or discarding a task retires its unit. The session is over
//! exactly when `units == 0`, and the worker whose decrement reaches
//! zero signals the slot's condvar. Nothing here needs a timeout, and
//! nothing is pool-global: N sessions quiesce independently.
//!
//! Spawn increments may be `Relaxed` (a spawn happens inside a running
//! task, which holds a unit, so the counter cannot transiently hit
//! zero); decrements are `SeqCst` — see the abort argument below.
//!
//! # Idle strategy: spin → yield → park, with no timeout backstop
//!
//! An idle worker spins briefly (new work usually arrives within a few
//! hundred cycles during a parallel phase), then yields, then publishes
//! its index in the `sleepers` bitmask and parks on its own thread token.
//! The predecessor of this design polled a condvar with a 1 ms timeout —
//! the timeout existed because its wakeup path could miss a sleeper. Here
//! the classic lost-wakeup race (store-buffer/Dekker shape) is closed
//! exactly, so parking is indefinite:
//!
//! * the **sleeper** sets its bit with a `SeqCst` RMW, *then* re-checks
//!   every queue, and only parks if all are empty;
//! * the **producer** pushes its task, *then* executes a `SeqCst` fence,
//!   *then* reads the bitmask, and unparks a claimed sleeper.
//!
//! In any interleaving consistent with the single total order on these
//! `SeqCst` operations, either the producer's mask read observes the
//! sleeper's bit (so the sleeper is unparked — `park` consumes the token
//! even if the unpark arrives first), or the sleeper's queue re-check
//! observes the push (so it does not park). A missed wakeup would require
//! both sides to read state older than the other's write, which the fence
//! pair forbids. Waking is therefore a performance hint everywhere else
//! but a guarantee where it matters. The argument is per-pool, not
//! per-session: a worker woken for one session's push may find another
//! session's task first — either way it does not sleep on available work.
//!
//! # Abort protocol (panic, cancel, deadline, stall)
//!
//! Workers are persistent and shared, so a panicking task must neither
//! kill its thread nor disturb sibling sessions. Panics are one of four
//! abort *reasons* — the others are a fired [`CancelToken`], an expired
//! [`Session`] deadline, and a watchdog-detected stall — and all four
//! share one per-slot protocol:
//!
//! 1. whoever detects the fault files the reason in the slot's abort
//!    slot (first reason wins; a slot that is already closed — its
//!    session ended — rejects the filing, so a stale cancel is a no-op),
//!    raises the slot's `aborting` flag (`SeqCst`), and signals the
//!    slot's condvar to wake the client;
//! 2. workers never rendezvous: a popped task whose slot is aborting is
//!    **discarded at pop** (its destructor runs, its unit retires), and
//!    running tasks of the session finish normally (long ones should
//!    poll [`Worker::cancelled`]). Sibling sessions' tasks are executed
//!    as if nothing happened;
//! 3. the client waits until none of the session's units is queued or
//!    running (`low == high`: every survivor is suspended in a cell).
//!    This wait cannot miss its wakeup: unit decrements are `SeqCst`
//!    RMWs, the `aborting` store/load pair is `SeqCst`, and a decrement
//!    that observes `low == high` with `aborting` set signals the
//!    condvar under the slot's `done` mutex — the classic Dekker
//!    argument, client predicate-check under the same mutex;
//! 4. the client then single-handedly **poisons every cell in the
//!    slot's registry that still holds one of this session's suspended
//!    continuations** (dropping the continuation — nothing leaks; any
//!    straggler touch of such a cell fails fast with the originating
//!    failure context), closes the slot, and returns the reason as a
//!    [`SessionError`](crate::SessionError). [`Runtime::run`] re-throws
//!    it; [`Runtime::try_run`] hands it to the caller. The pool needs no
//!    recovery step — sibling sessions never stopped.
//!
//! The poison pass finds its targets through the slot's *suspend
//! registry*: each touch that suspends appends a `Weak` reference to its
//! cell (one uncontended lock on the suspension path — a path that
//! already allocates). Cells shared with *other* sessions (possible only
//! through the multi-waiter mutex cell) are poisoned selectively: only
//! this session's waiters are dropped, and the cell stays usable for its
//! surviving sessions. Sharing an *unwritten* lock-free cell across
//! sessions is a documented program error; the cell state machine
//! arbitrates every such race to a panic (never undefined behavior).
//!
//! # Quiescence watchdog: per-session progress heartbeats
//!
//! A correct program always drives `units` to zero, but a buggy one — a
//! touch of a cell nobody will ever write, a cyclic touch chain — leaves
//! the session's remaining units suspended forever. Every scheduler
//! event attributed to a session (task execution, spawn, suspension,
//! resume, cell fulfill) bumps a per-worker *progress* counter in the
//! session's slot; the sum of those lanes is the session's **progress
//! epoch**. The client's wait loop (outside the model checker, which has
//! no clock) samples its own session's epoch a few hundred times per
//! second and declares a stall through one of two detectors:
//!
//! * **Provable idle-pool stall.** When the pool's sleeper bitmask stays
//!   full, the session's epoch stays frozen, every queue stays empty,
//!   and the session's units are all suspended across several
//!   consecutive samples, nothing can ever change again — a parked
//!   worker only wakes for a push, and no task is running anywhere to
//!   push one. Detection is immediate (a handful of 2 ms samples), no
//!   budget involved. If queues are *non-empty* with all workers parked,
//!   that is a lost wakeup (a runtime bug, closed by the fence protocol
//!   above, but cheap to defend against): the watchdog re-kicks the pool
//!   a bounded number of times before giving up.
//!
//! * **Heartbeat stall.** The provable detector abstains while a sibling
//!   session keeps even one worker busy — but the *session's own* epoch
//!   does not: a session whose remaining units are all suspended and
//!   whose epoch stays frozen past a budget is declared stalled
//!   **regardless of how busy sibling sessions keep the pool** (progress
//!   for such a session can only arrive via a fulfill, which would bump
//!   its epoch). The budget is [`Session::stall_budget`] when set, a
//!   generous default otherwise. With an explicit budget the detector
//!   also covers the *running* wedge — a task spinning forever inside
//!   its body — which the default leaves to deadlines, because a frozen
//!   epoch with a running task is indistinguishable from a long,
//!   legitimate compute-only closure; the budget is the caller's
//!   assertion that no legal closure goes that long without a scheduler
//!   event.
//!
//! The per-worker progress lanes are plain owner-only `Relaxed` counters
//! (same discipline as the statistics they sit next to). Relaxed
//! suffices: the watchdog only compares successive *sums* for equality,
//! each lane is monotone, and a lagging read can only delay a freeze
//! verdict by one 2 ms sample — noise against any realistic budget;
//! hysteresis (several consecutive frozen samples) absorbs the rest.
//! Either way the session aborts with
//! [`SessionError::Stalled`](crate::SessionError::Stalled) carrying the
//! stuck cell set and the freeze provenance (last epoch, frozen sample
//! count, frozen duration) instead of hanging the client forever. The
//! deadline detector is per-session, independent, and unaffected.

use std::any::Any;
use std::sync::{Arc, OnceLock, Weak};
use std::time::Duration;

use crate::error::{PoisonInfo, PoisonTarget, Session, SessionError, StallReport, StuckCell};

use crate::sync::atomic::{fence, AtomicBool, AtomicU64, AtomicUsize, Ordering};
use crate::sync::thread::{JoinHandle, Thread};
use crate::sync::{Condvar, Mutex, MutexGuard};

use crate::deque::{deque, Injector, Stealer};
use crate::policy::SchedPolicy;
use crate::scheduler::Worker;
use crate::task::Task;

/// Maximum pool size (sleeper state is one `u64` bitmask).
pub const MAX_WORKERS: usize = 64;

/// Idle rounds spent spinning before yielding. Each idle round is a full
/// `find_task` sweep (it polls every sibling's deque), so a few rounds
/// suffice; long spins just hammer the busy workers' cache lines.
/// Zero under the model checker: spinning only multiplies schedules
/// without adding behaviors, and parking is what the checker must cover.
#[cfg(not(pf_check))]
const SPIN_ROUNDS: u32 = 4;
#[cfg(pf_check)]
const SPIN_ROUNDS: u32 = 0;
/// Idle rounds spent yielding before parking.
#[cfg(not(pf_check))]
const YIELD_ROUNDS: u32 = 2;
#[cfg(pf_check)]
const YIELD_ROUNDS: u32 = 0;

/// Worker thread stack size. Deep recursive structures (future-tailed
/// lists, tall trees) drop with one native frame per element when their
/// last reference dies on a worker; a large lazily-committed reservation
/// makes that a non-issue for any realistic input.
const WORKER_STACK: usize = 256 << 20;

thread_local! {
    static IN_WORKER: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// Per-worker statistics, padded to a cache line so the owner's updates
/// (plain load+store: each entry is written only by worker *i*, and only
/// while it runs a task of the owning session) never contend with a
/// sibling's. One vector per [`SessionSlot`], so sessions never share
/// counters.
#[repr(align(128))]
#[derive(Default)]
pub(crate) struct WorkerStats {
    tasks_executed: AtomicU64,
    spawns: AtomicU64,
    suspensions: AtomicU64,
    steals: AtomicU64,
    /// This worker's lane of the session's progress epoch: bumped on
    /// every scheduler event attributed to the session (exec, spawn,
    /// suspend, resume, fulfill). The watchdog sums the lanes and
    /// compares successive sums for equality — see the module docs.
    progress: AtomicU64,
}

/// Owner-only increment: cheaper than an atomic RMW, and exact because
/// each counter is written by a single thread at any time.
#[inline]
fn bump(c: &AtomicU64, delta: u64) {
    c.store(
        c.load(Ordering::Relaxed).wrapping_add(delta),
        Ordering::Relaxed,
    );
}

impl WorkerStats {
    #[inline]
    pub(crate) fn add_tasks(&self, k: u64) {
        bump(&self.tasks_executed, k);
    }
    #[inline]
    pub(crate) fn add_spawns(&self, k: u64) {
        bump(&self.spawns, k);
    }
    #[inline]
    pub(crate) fn add_suspensions(&self, k: u64) {
        bump(&self.suspensions, k);
    }
    #[inline]
    pub(crate) fn sub_suspensions(&self, k: u64) {
        bump(&self.suspensions, k.wrapping_neg());
    }
    #[inline]
    pub(crate) fn add_steals(&self, k: u64) {
        bump(&self.steals, k);
    }
    /// One heartbeat tick on this worker's progress lane.
    #[inline]
    pub(crate) fn add_progress(&self) {
        bump(&self.progress, 1);
    }
}

/// Execution statistics of one [`Runtime::run_stats`] call.
///
/// `Copy` except under `--features trace`, where the optional
/// [`RunStats::trace`] summary carries per-worker vectors.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
#[cfg_attr(not(feature = "trace"), derive(Copy))]
pub struct RunStats {
    /// Closures executed (root + spawned tasks + reactivated waiters).
    pub tasks_executed: u64,
    /// [`Worker::spawn`] calls (a `spawn2` counts twice).
    pub spawns: u64,
    /// Touches that found their cell unwritten and parked in it.
    pub suspensions: u64,
    /// Tasks obtained by stealing from a sibling worker.
    pub steals: u64,
    /// Wall-clock time of the session, measured by the client from the
    /// root push to the quiescence signal. For a *single* session this
    /// is the one duration to report throughput from (see
    /// [`RunStats::ops_per_sec`]). Accumulated over *concurrent*
    /// sessions it is total session time, which double-counts
    /// overlapping wall-clock — divide by an externally measured window
    /// instead ([`RunStats::ops_per_sec_wall`]).
    pub elapsed: Duration,
    /// The session's scheduler-behavior summary (per-worker steal,
    /// suspension, execution, and park/unpark counts), built from exact
    /// per-lane counters when the session ends. Only present when
    /// tracing is compiled in — see `src/trace.rs`. The full event
    /// timeline is one [`Runtime::take_last_trace`] call away.
    #[cfg(feature = "trace")]
    pub trace: Option<pf_trace::TraceStats>,
}

impl RunStats {
    /// Sustained throughput of this session for a caller-defined notion
    /// of "operation" (keys applied, requests served, …): `ops` divided
    /// by [`RunStats::elapsed`]. Returns 0.0 for a zero-length session
    /// (sub-resolution runs) rather than dividing by zero.
    ///
    /// Meaningful for a single session, or for stats accumulated over
    /// sessions that ran *back to back*. For stats accumulated over
    /// sessions that overlapped in time, `elapsed` is summed busy time
    /// (greater than the wall-clock window that contained them), so this
    /// quotient *understates* throughput — use
    /// [`RunStats::ops_per_sec_wall`] with the real window instead.
    pub fn ops_per_sec(&self, ops: u64) -> f64 {
        Self::ops_per_sec_wall(ops, self.elapsed)
    }

    /// Throughput over an externally measured wall-clock window: `ops`
    /// divided by `wall`. This is the right quotient when sessions run
    /// concurrently — measure the window around the whole batch (as
    /// pf-service's `DrainReport::wall` does) and divide once, instead
    /// of dividing by summed per-session `elapsed`, which double-counts
    /// every overlap. Returns 0.0 for a zero-length window.
    pub fn ops_per_sec_wall(ops: u64, wall: Duration) -> f64 {
        let secs = wall.as_secs_f64();
        if secs > 0.0 {
            ops as f64 / secs
        } else {
            0.0
        }
    }

    /// Fold another session's counters and elapsed time into this one —
    /// the accumulation a service doing many sessions wants for a
    /// whole-run report. `elapsed` adds: the sum is total time spent
    /// *in* sessions, which equals wall-clock only when the sessions
    /// never overlapped. A service issuing concurrent sessions should
    /// report throughput with [`RunStats::ops_per_sec_wall`] over its
    /// own measured window.
    pub fn accumulate(&mut self, other: &RunStats) {
        self.tasks_executed += other.tasks_executed;
        self.spawns += other.spawns;
        self.suspensions += other.suspensions;
        self.steals += other.steals;
        self.elapsed += other.elapsed;
        #[cfg(feature = "trace")]
        match (&mut self.trace, &other.trace) {
            (Some(a), Some(b)) => a.merge(b),
            (t @ None, Some(b)) => *t = Some(b.clone()),
            _ => {}
        }
    }
}

/// Why a session is aborting; filed in its slot by whoever detects the
/// fault, first reason wins.
// The model checker's condvar has no timed wait, so the deadline and
// watchdog detectors (and hence their variants) don't exist there.
#[cfg_attr(pf_check, allow(dead_code))]
pub(crate) enum AbortReason {
    /// A task panicked; carries the payload `catch_unwind` caught.
    Panic(Box<dyn Any + Send>),
    /// The session's [`CancelToken`](crate::CancelToken) fired.
    Cancelled,
    /// The session's deadline expired.
    Deadline(Duration),
    /// The quiescence watchdog found the session wedged.
    Stalled {
        /// The session's live-unit count at detection time.
        live: usize,
        /// The progress epoch that froze (see [`SessionSlot::progress_epoch`]).
        epoch: u64,
        /// Consecutive watchdog samples that saw the epoch frozen.
        frozen: u32,
        /// Wall-clock length of the freeze at detection time.
        frozen_for: Duration,
    },
}

/// Abort state of one session, guarded by its slot's mutex.
struct SlotAbort {
    /// The session is between start and end; reasons are only accepted
    /// while set (a cancel arriving after the session ended must not
    /// poison a finished slot — stale aborts no-op here).
    open: bool,
    /// The filed abort reason, if any (first fault wins).
    reason: Option<AbortReason>,
}

// ---------------------------------------------------------------------
// Liveness-unit packing: low 32 bits = queued + running + suspended
// closures of the session, high 32 bits = the suspended subset.
// ---------------------------------------------------------------------

/// One queued/running/suspended closure.
const UNIT: u64 = 1;
/// The suspended-subset mark, packed into the high half.
const SUSP_UNIT: u64 = 1 << 32;
const LOW_MASK: u64 = (1 << 32) - 1;

#[inline]
fn live_of(units: u64) -> u64 {
    units & LOW_MASK
}
#[inline]
fn susp_of(units: u64) -> u64 {
    units >> 32
}

/// One live session's entire mutable state — the session table's row.
///
/// Shared by `Arc`: the client holds one while waiting, every queued
/// [`SessionTask`] carries one, every suspended continuation stores one
/// in its cell, and cancel tokens hold a `Weak`. The pool's session
/// table holds only `Weak`s, so a slot is garbage-collected the moment
/// its session's last artifact dies — no cross-session cleanup exists.
pub(crate) struct SessionSlot {
    /// Session id, unique per pool, numbered from 1.
    pub(crate) id: u64,
    /// Packed liveness counters (see module docs): low half = live
    /// units, high half = suspended units. `units == 0` ⇔ quiescent;
    /// `low == high` ⇔ nothing queued or running (the abort safe point).
    units: AtomicU64,
    /// The session's packed [`SchedPolicy`], fixed at session start.
    policy: u32,
    /// The session is aborting: workers discard its popped tasks.
    aborting: AtomicBool,
    /// Abort slot: open flag + first filed reason.
    abort: Mutex<SlotAbort>,
    /// Session-over flag + condvar the client blocks on. Also signalled
    /// (without setting the flag) when an aborting session's last
    /// queued-or-running unit drains, and when a reason is filed.
    done: Mutex<bool>,
    done_cv: Condvar,
    /// Cells this session suspended a continuation into — the poison
    /// pass's work list. One push per suspension (uncontended in the
    /// common case); taken by the client at abort cleanup.
    suspended: Mutex<Vec<Weak<dyn PoisonTarget>>>,
    /// Per-worker statistics for this session (entry *i* is written only
    /// by worker *i*).
    pub(crate) stats: Vec<WorkerStats>,
    /// The session's event lanes (one per worker + one client lane),
    /// sharing the pool's monotonic clock.
    #[cfg(feature = "trace")]
    pub(crate) trace: crate::trace::SessionLanes,
}

impl SessionSlot {
    fn new(
        id: u64,
        nthreads: usize,
        policy: SchedPolicy,
        #[cfg(feature = "trace")] trace: crate::trace::SessionLanes,
    ) -> SessionSlot {
        SessionSlot {
            id,
            // The root task's unit; the slot is born live.
            units: AtomicU64::new(UNIT),
            policy: policy.pack(),
            aborting: AtomicBool::new(false),
            abort: Mutex::new(SlotAbort {
                open: true,
                reason: None,
            }),
            done: Mutex::new(false),
            done_cv: Condvar::new(),
            suspended: Mutex::new(Vec::new()),
            stats: (0..nthreads).map(|_| WorkerStats::default()).collect(),
            #[cfg(feature = "trace")]
            trace,
        }
    }

    /// The session's scheduling policy (immutable; a byte unpack).
    #[inline]
    pub(crate) fn policy(&self) -> SchedPolicy {
        SchedPolicy::unpack(self.policy)
    }

    /// The session's progress epoch: the sum of its per-worker progress
    /// lanes. Monotone (each lane is owner-bumped, never decremented),
    /// so two equal successive reads mean no scheduler event was
    /// attributed to the session in between — the freeze predicate the
    /// watchdog's heartbeat detector runs on.
    pub(crate) fn progress_epoch(&self) -> u64 {
        self.stats
            .iter()
            .map(|s| s.progress.load(Ordering::Relaxed))
            .sum()
    }

    /// Is the session aborting? `SeqCst`: pairs with the `SeqCst` unit
    /// decrements for the abort wait's Dekker argument (module docs).
    #[inline]
    pub(crate) fn aborting(&self) -> bool {
        self.aborting.load(Ordering::SeqCst)
    }

    /// Add `n` fresh liveness units (spawn). `Relaxed` is enough: spawns
    /// happen inside a running task, which holds a unit of its own, so
    /// the counter cannot be concurrently observed at a signal point.
    #[inline]
    pub(crate) fn add_units(&self, n: u64) {
        self.units.fetch_add(n * UNIT, Ordering::Relaxed);
    }

    /// Account a continuation suspending into a cell: one more live
    /// unit, marked suspended. (The toucher's own task still holds its
    /// separate running unit.)
    #[inline]
    pub(crate) fn note_suspend(&self) {
        self.units.fetch_add(SUSP_UNIT + UNIT, Ordering::Relaxed);
    }

    /// Undo [`SessionSlot::note_suspend`] when the suspension raced the
    /// write and the continuation runs immediately after all. Cannot
    /// reach a signal point: the toucher's running unit keeps
    /// `low > high`.
    #[inline]
    pub(crate) fn unnote_suspend(&self) {
        self.units.fetch_sub(SUSP_UNIT + UNIT, Ordering::Relaxed);
    }

    /// A fulfilled cell took its waiter out of suspension: clear the
    /// suspended mark, keeping the unit live. Must be called **before**
    /// the resumed task is pushed to any queue (or run inline), so that
    /// `low - high` — the queued-or-running count the abort wait reads —
    /// never undercounts: the RMW is ordered before the push, and any
    /// pop of the task is ordered after the push.
    #[inline]
    pub(crate) fn transfer_resume(&self) {
        self.units.fetch_sub(SUSP_UNIT, Ordering::SeqCst);
    }

    /// Retire one liveness unit: a task of this session finished or was
    /// discarded. The final unit ends the session; under an abort, the
    /// decrement that drains the last queued-or-running unit wakes the
    /// waiting client (`SeqCst` RMW + `SeqCst` `aborting` load — the
    /// Dekker pair of the abort wait, see module docs).
    pub(crate) fn task_done(&self) {
        let after = self.units.fetch_sub(UNIT, Ordering::SeqCst) - UNIT;
        if after == 0 {
            *lock(&self.done) = true;
            self.done_cv.notify_all();
        } else if live_of(after) == susp_of(after) && self.aborting() {
            // Every remaining unit is suspended: the aborting client's
            // safe point. Signal under the done mutex so the client's
            // predicate re-check cannot race past this wakeup.
            let _g = lock(&self.done);
            self.done_cv.notify_all();
        }
    }

    /// Retire `n` suspended units whose waiters the poison pass just
    /// dropped (client-only; the client is the one being signalled, so
    /// no notify is needed).
    fn retire_poisoned(&self, n: u64) {
        self.units
            .fetch_sub(n * (SUSP_UNIT + UNIT), Ordering::SeqCst);
    }

    /// Record a cell this session suspended a continuation into, so an
    /// abort can poison it.
    pub(crate) fn register_suspend(&self, cell: Weak<dyn PoisonTarget>) {
        lock(&self.suspended).push(cell);
    }

    /// File an abort reason for this session and start its abort
    /// protocol. Returns whether this call filed the reason — `false`
    /// when the slot is closed (session already ended: stale cancels
    /// no-op) or a reason was already filed (first fault wins; later
    /// payloads are dropped).
    pub(crate) fn request_abort(&self, reason: AbortReason) -> bool {
        {
            let mut slot = lock(&self.abort);
            if !slot.open || slot.reason.is_some() {
                return false;
            }
            slot.reason = Some(reason);
        }
        self.aborting.store(true, Ordering::SeqCst);
        // Wake the client out of its wait (it re-checks `aborting`).
        // Workers need no wakeup: parked workers hold no task of any
        // session, and this session's queued tasks are discarded at pop.
        let _g = lock(&self.done);
        self.done_cv.notify_all();
        true
    }

    /// Is the session still between start and end?
    fn is_open(&self) -> bool {
        lock(&self.abort).open
    }
}

/// A queued unit of work tagged with its owning session: every task in
/// the injector, a deque, or a mailbox carries the `Arc` of its
/// session's slot, so accounting, abort checks, policy dispatch, and
/// trace attribution follow the task wherever it is stolen to. Seven
/// words (the [`Task`] six plus the pointer).
pub(crate) struct SessionTask {
    pub(crate) session: Arc<SessionSlot>,
    pub(crate) task: Task,
}

/// State shared by the clients and every worker of one pool.
pub(crate) struct Shared {
    pub(crate) injector: Injector<SessionTask>,
    pub(crate) stealers: Vec<Stealer<SessionTask>>,
    /// Per-worker resume mailboxes for [`ResumePlace::Mailbox`]: a
    /// fulfill hands the woken continuation to the worker that
    /// *suspended* it. Mailbox tasks are never stolen (locality is the
    /// point); quiescence still holds because a resume is a liveness
    /// *transfer* and every mailbox is covered by `work_available`, the
    /// watchdog, and discard-at-pop. Always allocated (an `Injector`
    /// is two machine words plus an empty `VecDeque`) so a per-session
    /// policy switch needs no reallocation.
    ///
    /// [`ResumePlace::Mailbox`]: crate::ResumePlace::Mailbox
    pub(crate) mailboxes: Vec<Injector<SessionTask>>,
    /// The pool's *hunt* policy word: the steal axes (granularity and
    /// victim selection) an **idle** worker uses while looking for work.
    /// An idle worker serves every session at once, so these two axes
    /// cannot be per-session; the word is refreshed (`Relaxed`) at each
    /// session start — last session to start wins, races are benign
    /// (any steal order is correct), and with one session at a time the
    /// behavior is exactly the session's policy. The per-*task* axes
    /// (spawn order, resume placement) dispatch from the owning slot's
    /// word instead and are always exact.
    pub(crate) policy: AtomicUsize,
    /// Bit *i* set ⇔ worker *i* is parked (or committing to park).
    sleepers: AtomicU64,
    /// Unpark handles, indexed like `stealers`; set once at pool start.
    threads: OnceLock<Vec<Thread>>,
    /// Pool teardown: workers exit their loop.
    shutdown: AtomicBool,
    /// Session-id allocator (ids start at 1).
    next_session: AtomicU64,
    /// The session table: `Weak` handles to every slot issued by this
    /// pool, swept opportunistically at registration. Diagnostics only —
    /// the pool never acts on a slot; everything per-session reaches the
    /// slot through its tasks.
    sessions: Mutex<Vec<Weak<SessionSlot>>>,
}

/// Ignore mutex poisoning: every guarded invariant here is re-established
/// explicitly by the session/abort protocol, not by the guard scope.
pub(crate) fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

impl Shared {
    /// Wake up to `budget` parked workers. Must be called **after** the
    /// corresponding queue push: the fence orders the push before the
    /// mask read (the producer half of the lost-wakeup argument above).
    pub(crate) fn notify(&self, mut budget: usize) {
        // Chaos seam: stretch the push→wakeup window (no-op normally).
        crate::chaos::maybe_delay();
        fence(Ordering::SeqCst);
        while budget > 0 {
            let mask = self.sleepers.load(Ordering::Relaxed);
            if mask == 0 {
                return;
            }
            let bit = mask & mask.wrapping_neg();
            // Claim the sleeper so concurrent producers wake distinct
            // workers; the loser of the race retries on the next bit.
            if self.sleepers.fetch_and(!bit, Ordering::SeqCst) & bit != 0 {
                if let Some(threads) = self.threads.get() {
                    threads[bit.trailing_zeros() as usize].unpark();
                }
                budget -= 1;
            }
        }
    }

    /// Wake worker `index` specifically, if it is parked. Same producer
    /// contract as [`Shared::notify`]: call **after** the corresponding
    /// push (here: into `mailboxes[index]`), so the fence orders the
    /// push before the mask read. Claiming the bit keeps the wake
    /// exactly-once against concurrent producers; if the bit is clear
    /// the worker is awake and its pre-park re-check (which covers the
    /// mailbox) will find the task.
    pub(crate) fn notify_worker(&self, index: usize) {
        crate::chaos::maybe_delay();
        fence(Ordering::SeqCst);
        let bit = 1u64 << index;
        if self.sleepers.load(Ordering::Relaxed) & bit != 0
            && self.sleepers.fetch_and(!bit, Ordering::SeqCst) & bit != 0
        {
            if let Some(threads) = self.threads.get() {
                threads[index].unpark();
            }
        }
    }

    /// The pool's hunt policy (steal axes for idle workers; see the
    /// field docs). One `Relaxed` load plus a few byte compares.
    #[inline]
    pub(crate) fn hunt_policy(&self) -> SchedPolicy {
        SchedPolicy::unpack(self.policy.load(Ordering::Relaxed) as u32)
    }

    fn unpark_all(&self) {
        if let Some(threads) = self.threads.get() {
            for t in threads {
                t.unpark();
            }
        }
    }

    /// Register a fresh slot in the session table, sweeping entries
    /// whose sessions have been garbage-collected.
    fn register_session(&self, slot: &Arc<SessionSlot>) {
        let mut table = lock(&self.sessions);
        table.retain(|w| w.strong_count() > 0);
        table.push(Arc::downgrade(slot));
    }
}

// Model builds set SPIN_ROUNDS = YIELD_ROUNDS = 0, making the ladder
// comparisons degenerate (`idle <= 0` on an unsigned counter) — that is
// intended, not a bug, so silence the lint rather than restructure.
#[cfg_attr(pf_check, allow(clippy::absurd_extreme_comparisons))]
fn worker_loop(wk: &Worker) {
    let shared = wk.shared();
    let bit = 1u64 << wk.index();
    let mut idle: u32 = 0;
    // The slot of the last task this worker ran: park/unpark events are
    // attributed to it (the session whose dry spell parked us).
    #[cfg(feature = "trace")]
    let mut last: Option<Arc<SessionSlot>> = None;
    loop {
        if shared.shutdown.load(Ordering::Acquire) {
            return;
        }
        if let Some(st) = wk.find_task() {
            idle = 0;
            let finished = wk.execute(st);
            #[cfg(feature = "trace")]
            {
                last = Some(finished);
            }
            #[cfg(not(feature = "trace"))]
            drop(finished);
            continue;
        }
        idle += 1;
        if idle <= SPIN_ROUNDS {
            std::hint::spin_loop();
        } else if idle <= SPIN_ROUNDS + YIELD_ROUNDS {
            crate::sync::thread::yield_now();
        } else {
            // Publish intent to sleep, then re-check: the sleeper half of
            // the lost-wakeup argument (module docs).
            shared.sleepers.fetch_or(bit, Ordering::SeqCst);
            // `pf_check_lost_wakeup` is a *deliberate seeded bug* for the
            // model checker's non-vacuity test (crates/check/tests): it
            // removes this re-check, reopening the classic race where a
            // producer's push lands between the worker's last sweep and
            // its park — the exact bug the re-check exists to close.
            // Never set outside that test.
            #[cfg(not(pf_check_lost_wakeup))]
            if wk.work_available() || shared.shutdown.load(Ordering::SeqCst) {
                shared.sleepers.fetch_and(!bit, Ordering::SeqCst);
                idle = 0;
                continue;
            }
            crate::trace::park(wk, {
                #[cfg(feature = "trace")]
                {
                    last.as_deref()
                }
                #[cfg(not(feature = "trace"))]
                {
                    None
                }
            });
            crate::sync::thread::park();
            crate::trace::unpark(wk, {
                #[cfg(feature = "trace")]
                {
                    last.as_deref()
                }
                #[cfg(not(feature = "trace"))]
                {
                    None
                }
            });
            // A claiming producer already cleared our bit; clearing again
            // is harmless and also covers spurious unparks.
            shared.sleepers.fetch_and(!bit, Ordering::SeqCst);
            idle = 0;
        }
    }
}

/// A futures runtime with a fixed pool of persistent worker threads.
///
/// Workers are spawned by [`Runtime::new`] and live until the `Runtime`
/// is dropped; each [`Runtime::run`] call executes one computation to
/// quiescence on the same pool. Results written into future cells can be
/// inspected as soon as `run` returns. Concurrent `run` /
/// [`Runtime::try_run_session`] calls from different threads co-execute
/// on the shared workers, each session isolated in its own slot (see the
/// module docs) — a panic in one session never disturbs another.
pub struct Runtime {
    shared: Arc<Shared>,
    handles: Mutex<Vec<JoinHandle<()>>>,
    nthreads: usize,
    /// Policy for sessions that do not carry a [`Session::policy`]
    /// override.
    default_policy: SchedPolicy,
    /// One monotonic clock per pool: every session's lanes stamp against
    /// it, so concurrent sessions share a timeline.
    #[cfg(feature = "trace")]
    trace_epoch: std::time::Instant,
    /// Per-lane ring capacity for each session's lanes (builder knob).
    #[cfg(feature = "trace")]
    trace_ring_cap: usize,
    /// The most recently *ended* session's full event timeline, parked
    /// here for [`Runtime::take_last_trace`]. With concurrent sessions,
    /// last to end wins.
    #[cfg(feature = "trace")]
    last_trace: Mutex<Option<pf_trace::SessionTrace>>,
}

/// Configures a [`Runtime`] beyond its thread count: the default
/// [`SchedPolicy`] and (in tracing builds) the per-worker trace ring
/// capacity. Obtained from [`Runtime::builder`].
pub struct RuntimeBuilder {
    nthreads: usize,
    policy: SchedPolicy,
    // Present in every build so builder chains compile with or without
    // the feature; only read when tracing is compiled in.
    #[cfg_attr(not(feature = "trace"), allow(dead_code))]
    trace_ring_cap: usize,
}

impl RuntimeBuilder {
    /// Default scheduling policy for every session on this runtime
    /// (overridable per session with [`Session::policy`]).
    pub fn policy(mut self, policy: SchedPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Per-worker trace ring capacity in events (tracing builds only;
    /// default 2^14 = 16384). Exact `TraceStats` counters never drop
    /// regardless of this value — it bounds only the event *timeline*,
    /// whose drop count the Perfetto export metadata reports.
    pub fn trace_ring_cap(mut self, cap: usize) -> Self {
        self.trace_ring_cap = cap.max(1);
        self
    }

    /// Spawn the pool.
    pub fn build(self) -> Runtime {
        Runtime::build(self)
    }
}

impl Runtime {
    /// A runtime with `nthreads` persistent workers
    /// (`1 ..= `[`MAX_WORKERS`]).
    pub fn new(nthreads: usize) -> Self {
        Self::builder(nthreads).build()
    }

    /// A [`RuntimeBuilder`] for `nthreads` workers with the default
    /// policy and trace ring capacity.
    pub fn builder(nthreads: usize) -> RuntimeBuilder {
        RuntimeBuilder {
            nthreads,
            policy: SchedPolicy::default(),
            trace_ring_cap: crate::trace::DEFAULT_RING_CAP,
        }
    }

    /// Shorthand: a runtime whose every session defaults to `policy`.
    pub fn with_policy(nthreads: usize, policy: SchedPolicy) -> Self {
        Self::builder(nthreads).policy(policy).build()
    }

    fn build(b: RuntimeBuilder) -> Self {
        let nthreads = b.nthreads;
        assert!(
            (1..=MAX_WORKERS).contains(&nthreads),
            "nthreads must be in 1..={MAX_WORKERS}, got {nthreads}"
        );
        let locals: Vec<_> = (0..nthreads).map(|_| deque()).collect();
        let stealers = locals.iter().map(|d| d.stealer()).collect();
        let shared = Arc::new(Shared {
            injector: Injector::new(),
            stealers,
            mailboxes: (0..nthreads).map(|_| Injector::new()).collect(),
            policy: AtomicUsize::new(b.policy.pack() as usize),
            sleepers: AtomicU64::new(0),
            threads: OnceLock::new(),
            shutdown: AtomicBool::new(false),
            next_session: AtomicU64::new(0),
            sessions: Mutex::new(Vec::new()),
        });
        let handles: Vec<JoinHandle<()>> = locals
            .into_iter()
            .enumerate()
            .map(|(i, local)| {
                let shared = Arc::clone(&shared);
                crate::sync::thread::Builder::new()
                    .name(format!("pf-rt-worker-{i}"))
                    .stack_size(WORKER_STACK)
                    .spawn(move || {
                        IN_WORKER.with(|f| f.set(true));
                        let worker = Worker::new(shared, local, i);
                        worker_loop(&worker);
                    })
                    .expect("failed to spawn worker")
            })
            .collect();
        shared
            .threads
            .set(handles.iter().map(|h| h.thread().clone()).collect())
            .expect("threads set twice");
        Runtime {
            shared,
            handles: Mutex::new(handles),
            nthreads,
            default_policy: b.policy,
            #[cfg(feature = "trace")]
            trace_epoch: std::time::Instant::now(),
            #[cfg(feature = "trace")]
            trace_ring_cap: b.trace_ring_cap,
            #[cfg(feature = "trace")]
            last_trace: Mutex::new(None),
        }
    }

    /// The policy sessions run under when no per-session override is
    /// given.
    pub fn default_policy(&self) -> SchedPolicy {
        self.default_policy
    }

    /// Number of sessions currently live on this pool (started, not yet
    /// ended). Diagnostic; the count is a snapshot and may be stale by
    /// the time it is read.
    pub fn live_sessions(&self) -> usize {
        lock(&self.shared.sessions)
            .iter()
            .filter(|w| w.upgrade().is_some_and(|s| s.is_open()))
            .count()
    }

    /// Take the most recently ended session's full event timeline
    /// (tracing builds only). `None` until a session has ended, or after
    /// the trace was already taken; with concurrent sessions, the last
    /// to end wins. Available for failed sessions too — the poison
    /// events an abort records are often exactly what a post-mortem
    /// needs — whereas the summary on [`RunStats`] only travels with
    /// successful sessions.
    #[cfg(feature = "trace")]
    pub fn take_last_trace(&self) -> Option<pf_trace::SessionTrace> {
        lock(&self.last_trace).take()
    }

    /// The process-wide default runtime, sized to the available
    /// parallelism. Its workers are spawned on first use and never torn
    /// down. (Unavailable under the model checker: a process-lifetime
    /// pool would leak model threads across executions.)
    #[cfg(not(pf_check))]
    pub fn global() -> &'static Runtime {
        static GLOBAL: OnceLock<Runtime> = OnceLock::new();
        GLOBAL.get_or_init(|| {
            let n = std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
                .min(MAX_WORKERS);
            Runtime::new(n)
        })
    }

    /// A process-wide shared runtime with exactly `nthreads` workers,
    /// created on first request and reused thereafter. This is what
    /// benchmark drivers sweeping thread counts should use: repeated
    /// timings at the same width hit a warm pool instead of paying
    /// thread creation per measurement. (Unavailable under the model
    /// checker, like [`Runtime::global`].)
    #[cfg(not(pf_check))]
    pub fn shared(nthreads: usize) -> Arc<Runtime> {
        use std::collections::HashMap;
        static POOLS: OnceLock<Mutex<HashMap<usize, Arc<Runtime>>>> = OnceLock::new();
        let pools = POOLS.get_or_init(|| Mutex::new(HashMap::new()));
        let mut map = lock(pools);
        Arc::clone(
            map.entry(nthreads)
                .or_insert_with(|| Arc::new(Runtime::new(nthreads))),
        )
    }

    /// Number of worker threads.
    pub fn nthreads(&self) -> usize {
        self.nthreads
    }

    /// Execute `root` and every task it transitively spawns; returns when
    /// the computation is quiescent (every closure has run). Panics in
    /// tasks propagate to the caller. Prefer [`Runtime::try_run`] when a
    /// failed session should be a recoverable value instead.
    pub fn run(&self, root: impl FnOnce(&Worker) + Send + 'static) {
        let _ = self.run_stats(root);
    }

    /// [`Runtime::run`], returning execution statistics for this call
    /// only (each session owns its counters).
    pub fn run_stats(&self, root: impl FnOnce(&Worker) + Send + 'static) -> RunStats {
        match self.try_run(root) {
            Ok(stats) => stats,
            Err(e) => e.resume(),
        }
    }

    /// Fault-contained [`Runtime::run`]: execute `root` to quiescence and
    /// return the session's statistics, or a [`SessionError`] when the
    /// session aborted (a task panicked; with [`Runtime::try_run_session`]
    /// options, also cancellation, an expired deadline, or a detected
    /// stall). On `Err` the session has already been cleaned up: its
    /// queued tasks were (or are being) discarded, suspended
    /// continuations dropped — nothing leaks — and their cells poisoned,
    /// so a straggler touch fails fast with this failure's context.
    /// Concurrent sessions on the same pool are untouched by the abort.
    pub fn try_run(
        &self,
        root: impl FnOnce(&Worker) + Send + 'static,
    ) -> Result<RunStats, SessionError> {
        self.try_run_session(Session::new(), root)
    }

    /// [`Runtime::try_run`] with per-session options: a wall-clock
    /// [`Session::deadline`], a [`Session::cancel_token`], and/or a
    /// [`Session::policy`]. Callable concurrently from any number of
    /// threads; each call is an independent session with its own slot.
    pub fn try_run_session(
        &self,
        opts: Session,
        root: impl FnOnce(&Worker) + Send + 'static,
    ) -> Result<RunStats, SessionError> {
        assert!(
            !IN_WORKER.with(|f| f.get()),
            "Runtime::run called from inside a worker task (would deadlock)"
        );
        let shared = &*self.shared;
        let sid = shared.next_session.fetch_add(1, Ordering::Relaxed) + 1;
        let policy = opts.policy.unwrap_or(self.default_policy);
        let slot = Arc::new(SessionSlot::new(
            sid,
            self.nthreads,
            policy,
            #[cfg(feature = "trace")]
            crate::trace::SessionLanes::new(self.nthreads, self.trace_ring_cap, self.trace_epoch),
        ));
        shared.register_session(&slot);
        // Refresh the hunt word (steal axes; see `Shared::policy`).
        shared
            .policy
            .store(policy.pack() as usize, Ordering::Relaxed);

        // Register the cancel token against the fresh slot. A token
        // fired before registration is caught by the flag re-check; one
        // fired after goes through `request_abort` like any other fault.
        // A stale token can never abort this session: it holds a `Weak`
        // to the slot it was registered with, not to the pool.
        if let Some(tok) = &opts.cancel {
            tok.register(&slot);
            if tok.is_cancelled() {
                slot.request_abort(AbortReason::Cancelled);
            }
        }

        let started = std::time::Instant::now();
        shared.injector.push(SessionTask {
            session: Arc::clone(&slot),
            task: Task::new(root),
        });
        shared.notify(1);

        self.wait_session(&slot, &opts);
        let elapsed = started.elapsed();

        // Close the slot; a reason filed before this point wins even
        // over a clean finish (its filer observed the slot open).
        let reason = {
            let mut ab = lock(&slot.abort);
            ab.open = false;
            ab.reason.take()
        };
        if let Some(tok) = &opts.cancel {
            tok.unregister();
        }

        if let Some(reason) = reason {
            let ctx = Arc::new(PoisonInfo {
                session: sid,
                reason: SessionError::describe_reason(&reason),
            });
            let stuck = Self::finish_abort(&slot, &ctx);
            // Drain *after* the abort cleanup so its poison events are in
            // the timeline. No RunStats travels on this path; the trace
            // is reachable through `take_last_trace`.
            #[cfg(feature = "trace")]
            {
                let (session_trace, _) = slot.trace.drain(sid, &policy.label());
                *lock(&self.last_trace) = Some(session_trace);
            }
            return Err(match reason {
                AbortReason::Panic(payload) => SessionError::Panicked {
                    session: sid,
                    payload,
                },
                AbortReason::Cancelled => SessionError::Cancelled { session: sid },
                AbortReason::Deadline(d) => SessionError::DeadlineExceeded {
                    session: sid,
                    deadline: d,
                },
                AbortReason::Stalled {
                    live,
                    epoch,
                    frozen,
                    frozen_for,
                } => SessionError::Stalled {
                    session: sid,
                    report: StallReport {
                        session: sid,
                        live,
                        epoch,
                        frozen,
                        frozen_for,
                        stuck,
                    },
                },
            });
        }

        debug_assert_eq!(slot.units.load(Ordering::SeqCst), 0);
        // Visibility of the slot's stats: each worker's (Relaxed) stat
        // writes precede its SeqCst `units` decrement in program order;
        // the RMW chain on `units` plus the done-mutex handoff order all
        // of them before this read.
        let mut out = RunStats {
            elapsed,
            ..RunStats::default()
        };
        for s in &slot.stats {
            out.tasks_executed += s.tasks_executed.load(Ordering::Relaxed);
            out.spawns += s.spawns.load(Ordering::Relaxed);
            out.suspensions += s.suspensions.load(Ordering::Relaxed);
            out.steals += s.steals.load(Ordering::Relaxed);
        }
        #[cfg(feature = "trace")]
        {
            let (session_trace, summary) = slot.trace.drain(sid, &policy.label());
            *lock(&self.last_trace) = Some(session_trace);
            out.trace = Some(summary);
        }
        Ok(out)
    }

    /// Block until the session ends (`done`) or an abort begins. Outside
    /// the model checker this loop also enforces the session deadline and
    /// runs the quiescence watchdog (module docs); the model build has no
    /// clock, so it waits indefinitely — model schedules either quiesce
    /// or abort.
    #[cfg(not(pf_check))]
    fn wait_session(&self, slot: &SessionSlot, opts: &Session) {
        use std::time::Instant;
        let deadline = opts.deadline.map(|d| (Instant::now() + d, d));
        let mut watchdog = Watchdog::default();
        let mut done = lock(&slot.done);
        loop {
            if *done || slot.aborting() {
                return;
            }
            let mut wait_for = WATCHDOG_POLL;
            if let Some((expires, d)) = deadline {
                let now = Instant::now();
                if now >= expires {
                    // `request_abort` takes the `done` lock to notify;
                    // release it first.
                    drop(done);
                    slot.request_abort(AbortReason::Deadline(d));
                    done = lock(&slot.done);
                    continue;
                }
                wait_for = wait_for.min(expires - now);
            }
            let (g, timeout) = slot
                .done_cv
                .wait_timeout(done, wait_for)
                .unwrap_or_else(|e| e.into_inner());
            done = g;
            if timeout.timed_out() {
                if let Some(seen) = watchdog.sample(&self.shared, slot, self.nthreads, opts.stall) {
                    drop(done);
                    slot.request_abort(AbortReason::Stalled {
                        live: seen.live,
                        epoch: seen.epoch,
                        frozen: seen.frozen,
                        frozen_for: seen.frozen_for,
                    });
                    done = lock(&slot.done);
                }
            }
        }
    }

    #[cfg(pf_check)]
    fn wait_session(&self, slot: &SessionSlot, opts: &Session) {
        // Deadlines and the watchdog need a clock; the model has none.
        let _ = (opts.deadline, opts.stall);
        let mut done = lock(&slot.done);
        while !*done && !slot.aborting() {
            done = slot.done_cv.wait(done).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Client side of the abort protocol (module docs, steps 3–4).
    /// Returns descriptions of the cells that still held one of this
    /// session's suspended continuations — each such continuation is
    /// dropped and its cell poisoned with `ctx`.
    fn finish_abort(slot: &SessionSlot, ctx: &Arc<PoisonInfo>) -> Vec<StuckCell> {
        // Wait until none of the session's units is queued or running
        // (`low == high`); every queued task is being discarded at pop
        // by whichever worker finds it, and each discarding decrement
        // re-checks this predicate and signals (Dekker argument in the
        // module docs — the plain wait below cannot miss its wakeup; the
        // timed variant outside the model checker is pure defense).
        {
            let mut done = lock(&slot.done);
            loop {
                let u = slot.units.load(Ordering::SeqCst);
                if live_of(u) == susp_of(u) {
                    break;
                }
                #[cfg(not(pf_check))]
                {
                    done = slot
                        .done_cv
                        .wait_timeout(done, WATCHDOG_POLL)
                        .unwrap_or_else(|e| e.into_inner())
                        .0;
                }
                #[cfg(pf_check)]
                {
                    done = slot.done_cv.wait(done).unwrap_or_else(|e| e.into_inner());
                }
            }
        }
        // Poison every registered cell that still holds one of this
        // session's suspended continuations: the continuation is dropped
        // here (zero leaks — each waiter box owns an `Arc` cycle back to
        // its cell that only this pass can break) and the cell remembers
        // `ctx`, so a straggler touch fails fast with the originating
        // failure. Cells of *other* sessions are untouched: the lock-free
        // cell holds exactly one waiter (ours — it is in our registry),
        // and the mutex cell drops only waiters tagged with our session.
        let targets = std::mem::take(&mut *lock(&slot.suspended));
        let mut stuck = Vec::new();
        for weak in targets {
            if let Some(cell) = weak.upgrade() {
                let outcome = cell.poison(ctx);
                if outcome.dropped > 0 {
                    slot.retire_poisoned(outcome.dropped);
                }
                if let Some(desc) = outcome.stuck {
                    crate::trace::poison(slot, desc.addr);
                    stuck.push(desc);
                }
            }
        }
        stuck
    }
}

/// Client-side wait-loop poll interval; also the watchdog sample period.
#[cfg(not(pf_check))]
const WATCHDOG_POLL: Duration = Duration::from_millis(2);
/// Consecutive frozen samples before the watchdog declares a stall.
#[cfg(not(pf_check))]
const WATCHDOG_STABLE: u32 = 4;
/// Re-kicks of a fully-parked pool with non-empty queues (defensive lost-
/// wakeup recovery) before giving up and declaring a stall.
#[cfg(not(pf_check))]
const WATCHDOG_KICKS: u32 = 16;
/// Heartbeat budget for a suspended-only session with no explicit
/// [`Session::stall_budget`]: how long its progress epoch may stay
/// frozen, next to busy siblings, before the watchdog declares a stall.
/// Generous on purpose — a suspended-only session's epoch can only move
/// through a fulfill, so the sole false-positive risk is a cross-session
/// fulfill arriving later than this after *every* other event of the
/// session; set an explicit budget to tighten it.
#[cfg(not(pf_check))]
const WATCHDOG_SUSPENDED_BUDGET: Duration = Duration::from_millis(1000);

/// What one watchdog detection saw — the provenance carried into
/// [`AbortReason::Stalled`].
#[cfg(not(pf_check))]
struct StallSeen {
    live: usize,
    epoch: u64,
    frozen: u32,
    frozen_for: Duration,
}

/// Detects a wedged session by sampling its progress epoch (module docs).
#[cfg(not(pf_check))]
#[derive(Default)]
struct Watchdog {
    last_epoch: Option<u64>,
    /// Consecutive samples that saw `last_epoch` unchanged.
    frozen: u32,
    /// When the current freeze was first observed.
    frozen_since: Option<std::time::Instant>,
    kicks: u32,
}

#[cfg(not(pf_check))]
impl Watchdog {
    /// One sample of the pool + this session's slot. Returns `Some` when
    /// the session is stalled, through either detector (module docs):
    ///
    /// * **provable** — every worker parked (so *no* session has a
    ///   running task), this session's remaining units all suspended,
    ///   its epoch frozen across [`WATCHDOG_STABLE`] samples, and either
    ///   every queue empty (a true stall — absorbing, because only a
    ///   running task can produce work or wake a sleeper) or
    ///   [`WATCHDOG_KICKS`] recovery unparks failed to restart the pool;
    /// * **heartbeat** — the session's own epoch frozen past its budget
    ///   (`stall`, or [`WATCHDOG_SUSPENDED_BUDGET`] when the remaining
    ///   units are all suspended), no matter how busy sibling sessions
    ///   keep the pool. Without an explicit budget a *running* unit
    ///   abstains: a frozen epoch under a running task also describes a
    ///   long compute-only closure.
    fn sample(
        &mut self,
        shared: &Shared,
        slot: &SessionSlot,
        nthreads: usize,
        stall: Option<Duration>,
    ) -> Option<StallSeen> {
        let units = slot.units.load(Ordering::SeqCst);
        let live = live_of(units) as usize;
        if live == 0 || slot.aborting() {
            *self = Watchdog::default();
            return None;
        }
        let epoch = slot.progress_epoch();
        if self.last_epoch != Some(epoch) {
            self.last_epoch = Some(epoch);
            self.frozen = 0;
            self.frozen_since = Some(std::time::Instant::now());
            self.kicks = 0;
            return None;
        }
        self.frozen += 1;
        if self.frozen < WATCHDOG_STABLE {
            return None;
        }
        let frozen_for = self
            .frozen_since
            .map(|t| t.elapsed())
            .unwrap_or(Duration::ZERO);
        let seen = StallSeen {
            live,
            epoch,
            frozen: self.frozen,
            frozen_for,
        };
        let suspended_only = live_of(units) == susp_of(units);
        let all_parked = shared.sleepers.load(Ordering::SeqCst).count_ones() as usize == nthreads;
        if all_parked {
            let queues_empty = shared.injector.is_empty()
                && shared.stealers.iter().all(|s| s.is_empty())
                && shared.mailboxes.iter().all(|m| m.is_empty());
            if queues_empty {
                if suspended_only {
                    return Some(seen);
                }
                // `units` claims a queued-or-running task, yet nothing is
                // queued and nobody runs: a decrement in flight. The next
                // sample sees the settled state; fall through meanwhile.
            } else {
                // All workers parked yet work is queued (any session's):
                // a lost wakeup. The fence protocol makes this
                // unreachable; recover anyway, boundedly.
                self.kicks += 1;
                if self.kicks > WATCHDOG_KICKS {
                    return Some(seen);
                }
                shared.unpark_all();
                return None;
            }
        }
        let budget = match (stall, suspended_only) {
            (Some(b), _) => b,
            (None, true) => WATCHDOG_SUSPENDED_BUDGET,
            (None, false) => return None,
        };
        if frozen_for >= budget {
            return Some(seen);
        }
        None
    }
}

impl Drop for Runtime {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.unpark_all();
        for h in lock(&self.handles).drain(..) {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn session_task_is_seven_words() {
        assert_eq!(
            std::mem::size_of::<SessionTask>(),
            7 * std::mem::size_of::<usize>()
        );
    }

    #[test]
    fn unit_packing_roundtrips() {
        let u = 3 * UNIT + 2 * SUSP_UNIT;
        assert_eq!(live_of(u), 3);
        assert_eq!(susp_of(u), 2);
    }
}
