//! Persistent worker pool with exact quiescence detection.
//!
//! [`Runtime::new`] spawns its workers **once**; every [`Runtime::run`]
//! call is a *session* on the same pool, so the per-run cost is one
//! injector push plus one wakeup instead of N thread creations and joins.
//! Workers never exit between sessions — they park and are reused.
//!
//! # Session protocol
//!
//! `run_stats` (serialized by a session mutex, so a `Runtime` may be
//! shared freely):
//!
//! 1. reset the per-worker statistics (safe: the pool is quiescent — no
//!    task exists between sessions, and workers only write stats while
//!    running one);
//! 2. set `live = 1` (the root's unit), clear `done`, push the root task
//!    into the injector, and wake one sleeper;
//! 3. block on the `done` condvar until a worker brings `live` to zero
//!    (or an abort begins — see below).
//!
//! The `live` counter is the paper's quiescence argument made explicit:
//! it counts closures that are queued, running, or suspended in a future
//! cell. Spawning and suspending increment it; finishing a task
//! decrements it; a write that reactivates a waiter *transfers* the
//! suspended unit to the queue without touching the counter. The run is
//! over exactly when `live == 0`, and the worker whose decrement reaches
//! zero signals the client. Nothing here needs a timeout.
//!
//! # Idle strategy: spin → yield → park, with no timeout backstop
//!
//! An idle worker spins briefly (new work usually arrives within a few
//! hundred cycles during a parallel phase), then yields, then publishes
//! its index in the `sleepers` bitmask and parks on its own thread token.
//! The predecessor of this design polled a condvar with a 1 ms timeout —
//! the timeout existed because its wakeup path could miss a sleeper. Here
//! the classic lost-wakeup race (store-buffer/Dekker shape) is closed
//! exactly, so parking is indefinite:
//!
//! * the **sleeper** sets its bit with a `SeqCst` RMW, *then* re-checks
//!   every queue, and only parks if all are empty;
//! * the **producer** pushes its task, *then* executes a `SeqCst` fence,
//!   *then* reads the bitmask, and unparks a claimed sleeper.
//!
//! In any interleaving consistent with the single total order on these
//! `SeqCst` operations, either the producer's mask read observes the
//! sleeper's bit (so the sleeper is unparked — `park` consumes the token
//! even if the unpark arrives first), or the sleeper's queue re-check
//! observes the push (so it does not park). A missed wakeup would require
//! both sides to read state older than the other's write, which the fence
//! pair forbids. Waking is therefore a performance hint everywhere else
//! but a guarantee where it matters.
//!
//! # Abort protocol (panic, cancel, deadline, stall)
//!
//! Workers are persistent, so a panicking task must not kill its thread,
//! and the old trick of forcing `live = 0` is unsound here (a concurrent
//! `fetch_sub` would underflow the counter for the *next* session).
//! Panics are one of four abort *reasons* — the others are a fired
//! [`CancelToken`], an expired [`Session`] deadline, and a watchdog-
//! detected stall — and all four share one protocol:
//!
//! 1. whoever detects the fault files the reason in the session's abort
//!    slot (first reason wins, and only for the *current* session — a
//!    stale cancel is a no-op), raises `aborting`, and wakes everyone —
//!    including the client;
//! 2. each worker finishes its current task normally, then enters an
//!    *abort rendezvous*: it increments `abort_idle` and parks until
//!    `aborting` clears, touching no queue;
//! 3. once `abort_idle` equals the pool size, every worker is provably
//!    idle, so the client single-threadedly drains and drops all queued
//!    tasks, **poisons every cell that still holds a suspended
//!    continuation** (dropping the continuation — nothing leaks; any
//!    straggler touch of such a cell fails fast with the originating
//!    failure context), clears `aborting`, wakes the workers back into
//!    their normal loop, and returns the reason as a
//!    [`SessionError`](crate::SessionError). [`Runtime::run`] re-throws
//!    it; [`Runtime::try_run`] hands it to the caller and the pool is
//!    immediately reusable.
//!
//! The poison pass finds its targets through per-worker *suspend
//! registries*: each touch that suspends appends a `Weak` reference to
//! its cell in the executing worker's registry (owner-only, no
//! synchronization on the hot path). The client may read the registries
//! at the rendezvous — the `abort_idle` RMWs order every worker's
//! registry writes before the client's reads — and clears them at
//! session start, when the pool is quiescent (the `live` counter's
//! final `AcqRel` decrement orders all session writes before the
//! client's observation of `done`).
//!
//! # Quiescence watchdog
//!
//! A correct program always drives `live` to zero, but a buggy one — a
//! touch of a cell nobody will ever write, a cyclic touch chain — parks
//! every worker forever with `live > 0`. The client's wait loop (outside
//! the model checker, which has no clock) polls a few times per second:
//! when the sleeper bitmask stays full, the executed-task counters stay
//! frozen, and every queue stays empty across several consecutive
//! samples, nothing can ever change again — a parked worker only wakes
//! for a push, and no task is running to push. If the queues are
//! *non-empty* with all workers parked, that is a lost wakeup (a runtime
//! bug, closed by the fence protocol above, but cheap to defend against):
//! the watchdog re-kicks the pool a bounded number of times before giving
//! up. Either way the session aborts with
//! [`SessionError::Stalled`](crate::SessionError::Stalled) carrying the
//! stuck cell set instead of hanging the client forever.

use std::any::Any;
use std::cell::UnsafeCell;
use std::sync::{Arc, OnceLock, Weak};
use std::time::Duration;

use crate::error::{PoisonInfo, PoisonTarget, Session, SessionError, StallReport, StuckCell};

use crate::sync::atomic::{fence, AtomicBool, AtomicU64, AtomicUsize, Ordering};
use crate::sync::thread::{JoinHandle, Thread};
use crate::sync::{Condvar, Mutex, MutexGuard};

use crate::deque::{deque, Injector, Steal, Stealer};
use crate::policy::SchedPolicy;
use crate::scheduler::Worker;
use crate::task::Task;

/// Maximum pool size (sleeper state is one `u64` bitmask).
pub const MAX_WORKERS: usize = 64;

/// Idle rounds spent spinning before yielding. Each idle round is a full
/// `find_task` sweep (it polls every sibling's deque), so a few rounds
/// suffice; long spins just hammer the busy workers' cache lines.
/// Zero under the model checker: spinning only multiplies schedules
/// without adding behaviors, and parking is what the checker must cover.
#[cfg(not(pf_check))]
const SPIN_ROUNDS: u32 = 4;
#[cfg(pf_check)]
const SPIN_ROUNDS: u32 = 0;
/// Idle rounds spent yielding before parking.
#[cfg(not(pf_check))]
const YIELD_ROUNDS: u32 = 2;
#[cfg(pf_check)]
const YIELD_ROUNDS: u32 = 0;

/// Worker thread stack size. Deep recursive structures (future-tailed
/// lists, tall trees) drop with one native frame per element when their
/// last reference dies on a worker; a large lazily-committed reservation
/// makes that a non-issue for any realistic input.
const WORKER_STACK: usize = 256 << 20;

thread_local! {
    static IN_WORKER: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// Per-worker statistics, padded to a cache line so the owner's updates
/// (plain load+store: no other thread writes while a session is live)
/// never contend with a sibling's.
#[repr(align(128))]
#[derive(Default)]
pub(crate) struct WorkerStats {
    tasks_executed: AtomicU64,
    spawns: AtomicU64,
    suspensions: AtomicU64,
    steals: AtomicU64,
}

/// Owner-only increment: cheaper than an atomic RMW, and exact because
/// each counter is written by a single thread at any time.
#[inline]
fn bump(c: &AtomicU64, delta: u64) {
    c.store(
        c.load(Ordering::Relaxed).wrapping_add(delta),
        Ordering::Relaxed,
    );
}

impl WorkerStats {
    #[inline]
    pub(crate) fn add_tasks(&self, k: u64) {
        bump(&self.tasks_executed, k);
    }
    #[inline]
    pub(crate) fn add_spawns(&self, k: u64) {
        bump(&self.spawns, k);
    }
    #[inline]
    pub(crate) fn add_suspensions(&self, k: u64) {
        bump(&self.suspensions, k);
    }
    #[inline]
    pub(crate) fn sub_suspensions(&self, k: u64) {
        bump(&self.suspensions, k.wrapping_neg());
    }
    #[inline]
    pub(crate) fn add_steals(&self, k: u64) {
        bump(&self.steals, k);
    }
    fn reset(&self) {
        self.tasks_executed.store(0, Ordering::Relaxed);
        self.spawns.store(0, Ordering::Relaxed);
        self.suspensions.store(0, Ordering::Relaxed);
        self.steals.store(0, Ordering::Relaxed);
    }
}

/// Execution statistics of one [`Runtime::run_stats`] call.
///
/// `Copy` except under `--features trace`, where the optional
/// [`RunStats::trace`] summary carries per-worker vectors.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
#[cfg_attr(not(feature = "trace"), derive(Copy))]
pub struct RunStats {
    /// Closures executed (root + spawned tasks + reactivated waiters).
    pub tasks_executed: u64,
    /// [`Worker::spawn`] calls (a `spawn2` counts twice).
    pub spawns: u64,
    /// Touches that found their cell unwritten and parked in it.
    pub suspensions: u64,
    /// Tasks obtained by stealing from a sibling worker.
    pub steals: u64,
    /// Wall-clock time of the session, measured by the client from the
    /// root push to the quiescence signal. This is the *one* duration a
    /// service or benchmark should report throughput from (see
    /// [`RunStats::ops_per_sec`]) instead of re-deriving it from its own
    /// clock around the `run` call.
    pub elapsed: Duration,
    /// The session's scheduler-behavior summary (per-worker steal,
    /// suspension, execution, and park/unpark counts), built from exact
    /// per-lane counters at the session rendezvous. Only present when
    /// tracing is compiled in — see `src/trace.rs`. The full event
    /// timeline is one [`Runtime::take_last_trace`] call away.
    #[cfg(feature = "trace")]
    pub trace: Option<pf_trace::TraceStats>,
}

impl RunStats {
    /// Sustained throughput of this session for a caller-defined notion
    /// of "operation" (keys applied, requests served, …): `ops` divided
    /// by [`RunStats::elapsed`]. Returns 0.0 for a zero-length session
    /// (sub-resolution runs) rather than dividing by zero.
    pub fn ops_per_sec(&self, ops: u64) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs > 0.0 {
            ops as f64 / secs
        } else {
            0.0
        }
    }

    /// Fold another session's counters and elapsed time into this one —
    /// the accumulation a service doing many sessions wants for a
    /// whole-run report. `elapsed` adds (total busy time), so the sum's
    /// [`RunStats::ops_per_sec`] is throughput over time actually spent
    /// in sessions.
    pub fn accumulate(&mut self, other: &RunStats) {
        self.tasks_executed += other.tasks_executed;
        self.spawns += other.spawns;
        self.suspensions += other.suspensions;
        self.steals += other.steals;
        self.elapsed += other.elapsed;
        #[cfg(feature = "trace")]
        match (&mut self.trace, &other.trace) {
            (Some(a), Some(b)) => a.merge(b),
            (t @ None, Some(b)) => *t = Some(b.clone()),
            _ => {}
        }
    }
}

/// Why the current session is aborting; filed in the abort slot by
/// whoever detects the fault, first reason wins.
// The model checker's condvar has no timed wait, so the deadline and
// watchdog detectors (and hence their variants) don't exist there.
#[cfg_attr(pf_check, allow(dead_code))]
pub(crate) enum AbortReason {
    /// A task panicked; carries the payload `catch_unwind` caught.
    Panic(Box<dyn Any + Send>),
    /// The session's [`CancelToken`](crate::CancelToken) fired.
    Cancelled,
    /// The session's deadline expired.
    Deadline(Duration),
    /// The quiescence watchdog found the pool wedged.
    Stalled {
        /// `live` counter at detection time.
        live: usize,
    },
}

/// The abort state of the pool's current session.
#[derive(Default)]
struct AbortSlot {
    /// A session is between start and end; aborts are only accepted while
    /// set (a cancel arriving between sessions must not wedge the pool).
    active: bool,
    /// Id of that session; targeted aborts (cancel tokens) must match.
    session: u64,
    /// The filed abort reason, if any. `Some` ⇔ the session is aborting.
    reason: Option<AbortReason>,
}

/// Per-worker registry of cells this worker suspended a continuation
/// into during the current session — the poison pass's work list.
/// Owner-only while the session runs (plain `UnsafeCell`, padded so
/// owners never share a cache line); read/cleared by the client only at
/// the abort rendezvous or between sessions (safety argument in the
/// module docs).
#[repr(align(128))]
pub(crate) struct SuspendRegistry {
    cells: UnsafeCell<Vec<Weak<dyn PoisonTarget>>>,
}

// SAFETY: all cross-thread access is phase-separated by the session and
// abort protocols; see the module docs and the `unsafe fn` contracts.
unsafe impl Send for SuspendRegistry {}
unsafe impl Sync for SuspendRegistry {}

impl SuspendRegistry {
    fn new() -> Self {
        SuspendRegistry {
            cells: UnsafeCell::new(Vec::new()),
        }
    }

    /// Record a cell the owning worker just suspended into.
    ///
    /// SAFETY: callable only by the worker that owns this registry, while
    /// it is running a task of a live session.
    #[inline]
    pub(crate) unsafe fn push(&self, cell: Weak<dyn PoisonTarget>) {
        unsafe { (*self.cells.get()).push(cell) };
    }

    /// Take the registry's contents (client, at the abort rendezvous).
    ///
    /// SAFETY: callable only while every worker is provably idle (all in
    /// the abort rendezvous, or the pool quiescent between sessions).
    unsafe fn take(&self) -> Vec<Weak<dyn PoisonTarget>> {
        unsafe { std::mem::take(&mut *self.cells.get()) }
    }
}

/// State shared by the client and every worker of one pool.
pub(crate) struct Shared {
    pub(crate) injector: Injector<Task>,
    pub(crate) stealers: Vec<Stealer<Task>>,
    /// Per-worker resume mailboxes for [`ResumePlace::Mailbox`]: a
    /// fulfill hands the woken continuation to the worker that
    /// *suspended* it. Mailbox tasks are never stolen (locality is the
    /// point); quiescence still holds because a resume is a liveness
    /// *transfer* and every mailbox is covered by `work_available`, the
    /// watchdog, and the abort drain. Always allocated (an `Injector`
    /// is two machine words plus an empty `VecDeque`) so a per-session
    /// policy switch needs no reallocation.
    ///
    /// [`ResumePlace::Mailbox`]: crate::ResumePlace::Mailbox
    pub(crate) mailboxes: Vec<Injector<Task>>,
    /// The session's packed [`SchedPolicy`] (see `policy.rs`). Written
    /// only at session start, while the pool is quiescent; `Relaxed`
    /// loads on the per-task path (the injector push + notify fence
    /// publish it to every worker before any task runs).
    pub(crate) policy: AtomicUsize,
    pub(crate) live: AtomicUsize,
    pub(crate) stats: Vec<WorkerStats>,
    /// Per-worker suspend registries, indexed like `stealers`.
    pub(crate) suspended: Vec<SuspendRegistry>,
    /// Id of the current (or most recent) session; bumped at session
    /// start. Read by workers for diagnostics ([`Worker::session_id`]).
    ///
    /// [`Worker::session_id`]: crate::Worker::session_id
    pub(crate) session_id: AtomicU64,
    /// Bit *i* set ⇔ worker *i* is parked (or committing to park).
    sleepers: AtomicU64,
    /// Unpark handles, indexed like `stealers`; set once at pool start.
    threads: OnceLock<Vec<Thread>>,
    /// The session is aborting; workers rendezvous instead of running
    /// tasks.
    pub(crate) aborting: AtomicBool,
    /// Pool teardown: workers exit their loop.
    shutdown: AtomicBool,
    /// Number of workers currently parked in the abort rendezvous.
    abort_idle: AtomicUsize,
    /// Abort state of the current session.
    abort: Mutex<AbortSlot>,
    /// Session-over flag + condvar the client blocks on.
    done: Mutex<bool>,
    done_cv: Condvar,
    /// Per-lane event rings + exact counters (see `src/trace.rs`).
    #[cfg(feature = "trace")]
    pub(crate) trace: crate::trace::PoolTrace,
}

/// Ignore mutex poisoning: every guarded invariant here is re-established
/// explicitly by the session/abort protocol, not by the guard scope.
pub(crate) fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

impl Shared {
    /// Wake up to `budget` parked workers. Must be called **after** the
    /// corresponding queue push: the fence orders the push before the
    /// mask read (the producer half of the lost-wakeup argument above).
    pub(crate) fn notify(&self, mut budget: usize) {
        // Chaos seam: stretch the push→wakeup window (no-op normally).
        crate::chaos::maybe_delay();
        fence(Ordering::SeqCst);
        while budget > 0 {
            let mask = self.sleepers.load(Ordering::Relaxed);
            if mask == 0 {
                return;
            }
            let bit = mask & mask.wrapping_neg();
            // Claim the sleeper so concurrent producers wake distinct
            // workers; the loser of the race retries on the next bit.
            if self.sleepers.fetch_and(!bit, Ordering::SeqCst) & bit != 0 {
                if let Some(threads) = self.threads.get() {
                    threads[bit.trailing_zeros() as usize].unpark();
                }
                budget -= 1;
            }
        }
    }

    /// Wake worker `index` specifically, if it is parked. Same producer
    /// contract as [`Shared::notify`]: call **after** the corresponding
    /// push (here: into `mailboxes[index]`), so the fence orders the
    /// push before the mask read. Claiming the bit keeps the wake
    /// exactly-once against concurrent producers; if the bit is clear
    /// the worker is awake and its pre-park re-check (which covers the
    /// mailbox) will find the task.
    pub(crate) fn notify_worker(&self, index: usize) {
        crate::chaos::maybe_delay();
        fence(Ordering::SeqCst);
        let bit = 1u64 << index;
        if self.sleepers.load(Ordering::Relaxed) & bit != 0
            && self.sleepers.fetch_and(!bit, Ordering::SeqCst) & bit != 0
        {
            if let Some(threads) = self.threads.get() {
                threads[index].unpark();
            }
        }
    }

    /// The session's scheduling policy (unpacked per call; the load is
    /// `Relaxed` and the unpack is a handful of byte compares).
    #[inline]
    pub(crate) fn policy(&self) -> SchedPolicy {
        SchedPolicy::unpack(self.policy.load(Ordering::Relaxed) as u32)
    }

    fn unpark_all(&self) {
        if let Some(threads) = self.threads.get() {
            for t in threads {
                t.unpark();
            }
        }
    }

    /// Retire one task's liveness unit; the final unit ends the session.
    pub(crate) fn task_done(&self) {
        if self.live.fetch_sub(1, Ordering::AcqRel) == 1 {
            *lock(&self.done) = true;
            self.done_cv.notify_all();
        }
    }

    /// File an abort reason for the current session and start the abort
    /// protocol. `session: Some(id)` restricts the abort to that session
    /// (cancel tokens target the session they were registered with);
    /// `None` means "whatever session is live now" (a worker panic).
    /// Returns whether this call filed the reason — `false` when no
    /// session is active, the id does not match, or a reason was already
    /// filed (first fault wins; later payloads are dropped).
    pub(crate) fn request_abort(&self, session: Option<u64>, reason: AbortReason) -> bool {
        {
            let mut slot = lock(&self.abort);
            if !slot.active || session.is_some_and(|id| id != slot.session) || slot.reason.is_some()
            {
                return false;
            }
            slot.reason = Some(reason);
        }
        self.aborting.store(true, Ordering::SeqCst);
        // Wake parked workers into the rendezvous and the client out of
        // its condvar wait (it re-checks `aborting`).
        self.unpark_all();
        let _g = lock(&self.done);
        self.done_cv.notify_all();
        true
    }

    /// Worker side of the abort protocol: report idle, then hold still
    /// (touching no queue) until the client finishes cleaning up.
    fn abort_rendezvous(&self) {
        self.abort_idle.fetch_add(1, Ordering::SeqCst);
        while self.aborting.load(Ordering::SeqCst) && !self.shutdown.load(Ordering::SeqCst) {
            crate::sync::thread::park();
        }
        self.abort_idle.fetch_sub(1, Ordering::SeqCst);
    }
}

// Model builds set SPIN_ROUNDS = YIELD_ROUNDS = 0, making the ladder
// comparisons degenerate (`idle <= 0` on an unsigned counter) — that is
// intended, not a bug, so silence the lint rather than restructure.
#[cfg_attr(pf_check, allow(clippy::absurd_extreme_comparisons))]
fn worker_loop(wk: &Worker) {
    let shared = wk.shared();
    let bit = 1u64 << wk.index();
    let mut idle: u32 = 0;
    loop {
        if shared.shutdown.load(Ordering::Acquire) {
            return;
        }
        if shared.aborting.load(Ordering::Acquire) {
            shared.abort_rendezvous();
            idle = 0;
            continue;
        }
        if let Some(task) = wk.find_task() {
            idle = 0;
            wk.stats().add_tasks(1);
            crate::trace::exec(wk);
            match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                // Chaos seam: with `--cfg pf_chaos` this may panic before
                // the task body, modeling a fault at any task boundary.
                // A no-op otherwise.
                crate::chaos::maybe_panic();
                task.run(wk)
            })) {
                Ok(()) => shared.task_done(),
                Err(payload) => {
                    shared.request_abort(None, AbortReason::Panic(payload));
                }
            }
            continue;
        }
        idle += 1;
        if idle <= SPIN_ROUNDS {
            std::hint::spin_loop();
        } else if idle <= SPIN_ROUNDS + YIELD_ROUNDS {
            crate::sync::thread::yield_now();
        } else {
            // Publish intent to sleep, then re-check: the sleeper half of
            // the lost-wakeup argument (module docs).
            shared.sleepers.fetch_or(bit, Ordering::SeqCst);
            // `pf_check_lost_wakeup` is a *deliberate seeded bug* for the
            // model checker's non-vacuity test (crates/check/tests): it
            // removes this re-check, reopening the classic race where a
            // producer's push lands between the worker's last sweep and
            // its park — the exact bug the re-check exists to close.
            // Never set outside that test.
            #[cfg(not(pf_check_lost_wakeup))]
            if wk.work_available()
                || shared.shutdown.load(Ordering::SeqCst)
                || shared.aborting.load(Ordering::SeqCst)
            {
                shared.sleepers.fetch_and(!bit, Ordering::SeqCst);
                idle = 0;
                continue;
            }
            crate::trace::park(wk);
            crate::sync::thread::park();
            crate::trace::unpark(wk);
            // A claiming producer already cleared our bit; clearing again
            // is harmless and also covers spurious unparks.
            shared.sleepers.fetch_and(!bit, Ordering::SeqCst);
            idle = 0;
        }
    }
}

/// A futures runtime with a fixed pool of persistent worker threads.
///
/// Workers are spawned by [`Runtime::new`] and live until the `Runtime`
/// is dropped; each [`Runtime::run`] call executes one computation to
/// quiescence on the same pool. Results written into future cells can be
/// inspected as soon as `run` returns. Concurrent `run` calls on one
/// runtime are serialized.
pub struct Runtime {
    shared: Arc<Shared>,
    /// Serializes sessions; a pool runs one computation at a time.
    session: Mutex<()>,
    handles: Mutex<Vec<JoinHandle<()>>>,
    nthreads: usize,
    /// Policy for sessions that do not carry a [`Session::policy`]
    /// override.
    default_policy: SchedPolicy,
    /// The most recent session's full event timeline, parked here at the
    /// session rendezvous for [`Runtime::take_last_trace`].
    #[cfg(feature = "trace")]
    last_trace: Mutex<Option<pf_trace::SessionTrace>>,
}

/// Configures a [`Runtime`] beyond its thread count: the default
/// [`SchedPolicy`] and (in tracing builds) the per-worker trace ring
/// capacity. Obtained from [`Runtime::builder`].
pub struct RuntimeBuilder {
    nthreads: usize,
    policy: SchedPolicy,
    // Present in every build so builder chains compile with or without
    // the feature; only read when tracing is compiled in.
    #[cfg_attr(not(feature = "trace"), allow(dead_code))]
    trace_ring_cap: usize,
}

impl RuntimeBuilder {
    /// Default scheduling policy for every session on this runtime
    /// (overridable per session with [`Session::policy`]).
    pub fn policy(mut self, policy: SchedPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Per-worker trace ring capacity in events (tracing builds only;
    /// default 2^14 = 16384). Exact `TraceStats` counters never drop
    /// regardless of this value — it bounds only the event *timeline*,
    /// whose drop count the Perfetto export metadata reports.
    pub fn trace_ring_cap(mut self, cap: usize) -> Self {
        self.trace_ring_cap = cap.max(1);
        self
    }

    /// Spawn the pool.
    pub fn build(self) -> Runtime {
        Runtime::build(self)
    }
}

impl Runtime {
    /// A runtime with `nthreads` persistent workers
    /// (`1 ..= `[`MAX_WORKERS`]).
    pub fn new(nthreads: usize) -> Self {
        Self::builder(nthreads).build()
    }

    /// A [`RuntimeBuilder`] for `nthreads` workers with the default
    /// policy and trace ring capacity.
    pub fn builder(nthreads: usize) -> RuntimeBuilder {
        RuntimeBuilder {
            nthreads,
            policy: SchedPolicy::default(),
            trace_ring_cap: crate::trace::DEFAULT_RING_CAP,
        }
    }

    /// Shorthand: a runtime whose every session defaults to `policy`.
    pub fn with_policy(nthreads: usize, policy: SchedPolicy) -> Self {
        Self::builder(nthreads).policy(policy).build()
    }

    fn build(b: RuntimeBuilder) -> Self {
        let nthreads = b.nthreads;
        assert!(
            (1..=MAX_WORKERS).contains(&nthreads),
            "nthreads must be in 1..={MAX_WORKERS}, got {nthreads}"
        );
        let locals: Vec<_> = (0..nthreads).map(|_| deque()).collect();
        let stealers = locals.iter().map(|d| d.stealer()).collect();
        let shared = Arc::new(Shared {
            injector: Injector::new(),
            stealers,
            mailboxes: (0..nthreads).map(|_| Injector::new()).collect(),
            policy: AtomicUsize::new(b.policy.pack() as usize),
            live: AtomicUsize::new(0),
            stats: (0..nthreads).map(|_| WorkerStats::default()).collect(),
            suspended: (0..nthreads).map(|_| SuspendRegistry::new()).collect(),
            session_id: AtomicU64::new(0),
            sleepers: AtomicU64::new(0),
            threads: OnceLock::new(),
            aborting: AtomicBool::new(false),
            shutdown: AtomicBool::new(false),
            abort_idle: AtomicUsize::new(0),
            abort: Mutex::new(AbortSlot::default()),
            done: Mutex::new(false),
            done_cv: Condvar::new(),
            #[cfg(feature = "trace")]
            trace: crate::trace::PoolTrace::new(nthreads, b.trace_ring_cap),
        });
        let handles: Vec<JoinHandle<()>> = locals
            .into_iter()
            .enumerate()
            .map(|(i, local)| {
                let shared = Arc::clone(&shared);
                crate::sync::thread::Builder::new()
                    .name(format!("pf-rt-worker-{i}"))
                    .stack_size(WORKER_STACK)
                    .spawn(move || {
                        IN_WORKER.with(|f| f.set(true));
                        let worker = Worker::new(shared, local, i);
                        worker_loop(&worker);
                    })
                    .expect("failed to spawn worker")
            })
            .collect();
        shared
            .threads
            .set(handles.iter().map(|h| h.thread().clone()).collect())
            .expect("threads set twice");
        Runtime {
            shared,
            session: Mutex::new(()),
            handles: Mutex::new(handles),
            nthreads,
            default_policy: b.policy,
            #[cfg(feature = "trace")]
            last_trace: Mutex::new(None),
        }
    }

    /// The policy sessions run under when no per-session override is
    /// given.
    pub fn default_policy(&self) -> SchedPolicy {
        self.default_policy
    }

    /// Take the most recent session's full event timeline (tracing builds
    /// only). `None` until a session has run, or after the trace was
    /// already taken. Available for failed sessions too — the poison
    /// events an abort records are often exactly what a post-mortem
    /// needs — whereas the summary on [`RunStats`] only travels with
    /// successful sessions.
    #[cfg(feature = "trace")]
    pub fn take_last_trace(&self) -> Option<pf_trace::SessionTrace> {
        lock(&self.last_trace).take()
    }

    /// The process-wide default runtime, sized to the available
    /// parallelism. Its workers are spawned on first use and never torn
    /// down. (Unavailable under the model checker: a process-lifetime
    /// pool would leak model threads across executions.)
    #[cfg(not(pf_check))]
    pub fn global() -> &'static Runtime {
        static GLOBAL: OnceLock<Runtime> = OnceLock::new();
        GLOBAL.get_or_init(|| {
            let n = std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
                .min(MAX_WORKERS);
            Runtime::new(n)
        })
    }

    /// A process-wide shared runtime with exactly `nthreads` workers,
    /// created on first request and reused thereafter. This is what
    /// benchmark drivers sweeping thread counts should use: repeated
    /// timings at the same width hit a warm pool instead of paying
    /// thread creation per measurement. (Unavailable under the model
    /// checker, like [`Runtime::global`].)
    #[cfg(not(pf_check))]
    pub fn shared(nthreads: usize) -> Arc<Runtime> {
        use std::collections::HashMap;
        static POOLS: OnceLock<Mutex<HashMap<usize, Arc<Runtime>>>> = OnceLock::new();
        let pools = POOLS.get_or_init(|| Mutex::new(HashMap::new()));
        let mut map = lock(pools);
        Arc::clone(
            map.entry(nthreads)
                .or_insert_with(|| Arc::new(Runtime::new(nthreads))),
        )
    }

    /// Number of worker threads.
    pub fn nthreads(&self) -> usize {
        self.nthreads
    }

    /// Execute `root` and every task it transitively spawns; returns when
    /// the computation is quiescent (every closure has run). Panics in
    /// tasks propagate to the caller. Prefer [`Runtime::try_run`] when a
    /// failed session should be a recoverable value instead.
    pub fn run(&self, root: impl FnOnce(&Worker) + Send + 'static) {
        let _ = self.run_stats(root);
    }

    /// [`Runtime::run`], returning execution statistics for this call
    /// only (counters reset at session start).
    pub fn run_stats(&self, root: impl FnOnce(&Worker) + Send + 'static) -> RunStats {
        match self.try_run(root) {
            Ok(stats) => stats,
            Err(e) => e.resume(),
        }
    }

    /// Fault-contained [`Runtime::run`]: execute `root` to quiescence and
    /// return the session's statistics, or a [`SessionError`] when the
    /// session aborted (a task panicked; with [`Runtime::try_run_session`]
    /// options, also cancellation, an expired deadline, or a detected
    /// stall). On `Err` the pool has already been cleaned up and is
    /// immediately reusable: queued tasks were drained, suspended
    /// continuations dropped — nothing leaks — and their cells poisoned,
    /// so a straggler touch fails fast with this failure's context.
    pub fn try_run(
        &self,
        root: impl FnOnce(&Worker) + Send + 'static,
    ) -> Result<RunStats, SessionError> {
        self.try_run_session(Session::new(), root)
    }

    /// [`Runtime::try_run`] with per-session options: a wall-clock
    /// [`Session::deadline`] and/or a [`Session::cancel_token`].
    pub fn try_run_session(
        &self,
        opts: Session,
        root: impl FnOnce(&Worker) + Send + 'static,
    ) -> Result<RunStats, SessionError> {
        assert!(
            !IN_WORKER.with(|f| f.get()),
            "Runtime::run called from inside a worker task (would deadlock)"
        );
        let _session = lock(&self.session);
        let shared = &*self.shared;
        let sid = shared.session_id.load(Ordering::Relaxed) + 1;
        shared.session_id.store(sid, Ordering::Relaxed);

        // Arm the abort slot, then register the cancel token. A token
        // fired before registration is caught by the flag re-check below;
        // one fired after goes through `request_abort` like any other
        // fault. Either way a stale token (previous session, other pool)
        // can never abort this session: the slot checks the id.
        {
            let mut slot = lock(&shared.abort);
            slot.active = true;
            slot.session = sid;
            slot.reason = None;
        }
        if let Some(tok) = &opts.cancel {
            tok.register(&self.shared, sid);
            if tok.is_cancelled() {
                shared.request_abort(Some(sid), AbortReason::Cancelled);
            }
        }

        // Quiescent between sessions: nothing is running, so plain resets
        // are race-free; the injector push below publishes them. Stale
        // suspend-registry entries of the previous session go too.
        for s in &shared.stats {
            s.reset();
        }
        for reg in &shared.suspended {
            // SAFETY: pool quiescent between sessions; session mutex held.
            drop(unsafe { reg.take() });
        }
        // The session's scheduling policy: the per-session override
        // wins over the runtime default. Stored while quiescent; the
        // injector push below publishes it with everything else.
        let policy = opts.policy.unwrap_or(self.default_policy);
        shared
            .policy
            .store(policy.pack() as usize, Ordering::Relaxed);
        *lock(&shared.done) = false;
        shared.live.store(1, Ordering::Relaxed);
        // Discard idle-gap events (workers park/unpark between sessions)
        // and stamp the session start on the pool's trace clock.
        #[cfg(feature = "trace")]
        let trace_start = shared.trace.clear();
        let started = std::time::Instant::now();
        shared.injector.push(Task::new(root));
        shared.notify(1);

        self.wait_session(sid, &opts);
        let elapsed = started.elapsed();

        // Disarm the slot; a reason filed before this point wins even
        // over a clean finish (its filer already raised `aborting`, so
        // the workers are headed for the rendezvous regardless).
        let reason = {
            let mut slot = lock(&shared.abort);
            slot.active = false;
            slot.reason.take()
        };
        if let Some(tok) = &opts.cancel {
            tok.unregister();
        }

        if let Some(reason) = reason {
            let ctx = Arc::new(PoisonInfo {
                session: sid,
                reason: SessionError::describe_reason(&reason),
            });
            let stuck = self.finish_abort(&ctx);
            // Drain *after* the abort cleanup so its poison events are in
            // the timeline. No RunStats travels on this path; the trace
            // is reachable through `take_last_trace`.
            #[cfg(feature = "trace")]
            {
                let (session_trace, _) = shared.trace.drain(sid, trace_start, &policy.label());
                *lock(&self.last_trace) = Some(session_trace);
            }
            return Err(match reason {
                AbortReason::Panic(payload) => SessionError::Panicked {
                    session: sid,
                    payload,
                },
                AbortReason::Cancelled => SessionError::Cancelled { session: sid },
                AbortReason::Deadline(d) => SessionError::DeadlineExceeded {
                    session: sid,
                    deadline: d,
                },
                AbortReason::Stalled { live } => SessionError::Stalled {
                    session: sid,
                    report: StallReport { live, stuck },
                },
            });
        }

        debug_assert_eq!(shared.live.load(Ordering::SeqCst), 0);
        let mut out = RunStats {
            elapsed,
            ..RunStats::default()
        };
        for s in &shared.stats {
            out.tasks_executed += s.tasks_executed.load(Ordering::Relaxed);
            out.spawns += s.spawns.load(Ordering::Relaxed);
            out.suspensions += s.suspensions.load(Ordering::Relaxed);
            out.steals += s.steals.load(Ordering::Relaxed);
        }
        #[cfg(feature = "trace")]
        {
            let (session_trace, summary) = shared.trace.drain(sid, trace_start, &policy.label());
            *lock(&self.last_trace) = Some(session_trace);
            out.trace = Some(summary);
        }
        Ok(out)
    }

    /// Block until the session ends (`done`) or an abort begins. Outside
    /// the model checker this loop also enforces the session deadline and
    /// runs the quiescence watchdog (module docs); the model build has no
    /// clock, so it waits indefinitely — model schedules either quiesce
    /// or abort.
    #[cfg(not(pf_check))]
    fn wait_session(&self, sid: u64, opts: &Session) {
        use std::time::Instant;
        let shared = &*self.shared;
        let deadline = opts.deadline.map(|d| (Instant::now() + d, d));
        let mut watchdog = Watchdog::default();
        let mut done = lock(&shared.done);
        loop {
            if *done || shared.aborting.load(Ordering::SeqCst) {
                return;
            }
            let mut wait_for = WATCHDOG_POLL;
            if let Some((expires, d)) = deadline {
                let now = Instant::now();
                if now >= expires {
                    // `request_abort` takes the `done` lock to notify;
                    // release it first.
                    drop(done);
                    shared.request_abort(Some(sid), AbortReason::Deadline(d));
                    done = lock(&shared.done);
                    continue;
                }
                wait_for = wait_for.min(expires - now);
            }
            let (g, timeout) = shared
                .done_cv
                .wait_timeout(done, wait_for)
                .unwrap_or_else(|e| e.into_inner());
            done = g;
            if timeout.timed_out() {
                if let Some(live) = watchdog.sample(shared, self.nthreads) {
                    drop(done);
                    shared.request_abort(Some(sid), AbortReason::Stalled { live });
                    done = lock(&shared.done);
                }
            }
        }
    }

    #[cfg(pf_check)]
    fn wait_session(&self, _sid: u64, opts: &Session) {
        // Deadlines and the watchdog need a clock; the model has none.
        let _ = opts.deadline;
        let shared = &*self.shared;
        let mut done = lock(&shared.done);
        while !*done && !shared.aborting.load(Ordering::SeqCst) {
            done = shared.done_cv.wait(done).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Client side of the abort protocol (module docs, step 3). Returns
    /// descriptions of the cells that still held a suspended continuation
    /// — each such continuation is dropped and its cell poisoned with
    /// `ctx`.
    fn finish_abort(&self, ctx: &Arc<PoisonInfo>) -> Vec<StuckCell> {
        let shared = &*self.shared;
        // Wait until all workers sit in the rendezvous: any worker still
        // running a task is not counted, so reaching `nthreads` proves no
        // queue, counter, or suspend registry is being touched.
        while shared.abort_idle.load(Ordering::SeqCst) != self.nthreads {
            crate::sync::thread::yield_now();
        }
        // Sole owner of every queue now: drop the unstarted tasks. A
        // destructor panic must not wedge the cleanup.
        while let Some(task) = shared.injector.pop() {
            let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| drop(task)));
        }
        for s in &shared.stealers {
            loop {
                match s.steal() {
                    Steal::Success(task) => {
                        let _ =
                            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| drop(task)));
                    }
                    Steal::Retry => {}
                    Steal::Empty => break,
                }
            }
        }
        // Resume mailboxes may hold transferred continuations too
        // (mailbox resume policy); they carry live units like any queued
        // task and must be dropped with the rest.
        for mb in &shared.mailboxes {
            while let Some(task) = mb.pop() {
                let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| drop(task)));
            }
        }
        // Poison every cell that still holds a suspended continuation:
        // the continuation is dropped here (zero leaks — each waiter box
        // owns an `Arc` cycle back to its cell that only this pass can
        // break) and the cell remembers `ctx`, so a straggler touch in a
        // later session fails fast with the originating failure.
        let mut stuck = Vec::new();
        for reg in &shared.suspended {
            // SAFETY: every worker is held at the rendezvous (above).
            for weak in unsafe { reg.take() } {
                if let Some(cell) = weak.upgrade() {
                    if let Some(desc) = cell.poison(ctx) {
                        crate::trace::poison(shared, desc.addr);
                        stuck.push(desc);
                    }
                }
            }
        }
        shared.aborting.store(false, Ordering::SeqCst);
        shared.unpark_all();
        stuck
    }
}

/// Client-side wait-loop poll interval; also the watchdog sample period.
#[cfg(not(pf_check))]
const WATCHDOG_POLL: Duration = Duration::from_millis(2);
/// Consecutive frozen samples before the watchdog declares a stall.
#[cfg(not(pf_check))]
const WATCHDOG_STABLE: u32 = 4;
/// Re-kicks of a fully-parked pool with non-empty queues (defensive lost-
/// wakeup recovery) before giving up and declaring a stall.
#[cfg(not(pf_check))]
const WATCHDOG_KICKS: u32 = 16;

/// Detects an all-parked, non-quiescent pool (module docs).
#[cfg(not(pf_check))]
#[derive(Default)]
struct Watchdog {
    last_executed: Option<u64>,
    stable: u32,
    kicks: u32,
}

#[cfg(not(pf_check))]
impl Watchdog {
    /// One sample of the pool's global state. Returns `Some(live)` when
    /// the pool is provably wedged: every worker parked, liveness
    /// outstanding, progress counters frozen across [`WATCHDOG_STABLE`]
    /// samples, and either every queue empty (a true stall — absorbing,
    /// because only a running task can produce work or wake a sleeper) or
    /// [`WATCHDOG_KICKS`] recovery unparks failed to restart the pool.
    fn sample(&mut self, shared: &Shared, nthreads: usize) -> Option<usize> {
        let live = shared.live.load(Ordering::SeqCst);
        let all_parked = shared.sleepers.load(Ordering::SeqCst).count_ones() as usize == nthreads;
        if live == 0 || !all_parked || shared.aborting.load(Ordering::SeqCst) {
            self.stable = 0;
            self.last_executed = None;
            return None;
        }
        let executed: u64 = shared
            .stats
            .iter()
            .map(|s| s.tasks_executed.load(Ordering::Relaxed))
            .sum();
        match self.last_executed {
            Some(prev) if prev == executed => self.stable += 1,
            _ => self.stable = 1,
        }
        self.last_executed = Some(executed);
        if self.stable < WATCHDOG_STABLE {
            return None;
        }
        let queues_empty = shared.injector.is_empty()
            && shared.stealers.iter().all(|s| s.is_empty())
            && shared.mailboxes.iter().all(|m| m.is_empty());
        if queues_empty {
            return Some(live);
        }
        // All workers parked yet work is queued: a lost wakeup. The fence
        // protocol makes this unreachable; recover anyway, boundedly.
        self.stable = 0;
        self.kicks += 1;
        if self.kicks > WATCHDOG_KICKS {
            return Some(live);
        }
        shared.unpark_all();
        None
    }
}

impl Drop for Runtime {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.unpark_all();
        for h in lock(&self.handles).drain(..) {
            let _ = h.join();
        }
    }
}
