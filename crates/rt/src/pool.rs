//! Persistent worker pool with exact quiescence detection.
//!
//! [`Runtime::new`] spawns its workers **once**; every [`Runtime::run`]
//! call is a *session* on the same pool, so the per-run cost is one
//! injector push plus one wakeup instead of N thread creations and joins.
//! Workers never exit between sessions — they park and are reused.
//!
//! # Session protocol
//!
//! `run_stats` (serialized by a session mutex, so a `Runtime` may be
//! shared freely):
//!
//! 1. reset the per-worker statistics (safe: the pool is quiescent — no
//!    task exists between sessions, and workers only write stats while
//!    running one);
//! 2. set `live = 1` (the root's unit), clear `done`, push the root task
//!    into the injector, and wake one sleeper;
//! 3. block on the `done` condvar until a worker brings `live` to zero
//!    (or an abort begins — see below).
//!
//! The `live` counter is the paper's quiescence argument made explicit:
//! it counts closures that are queued, running, or suspended in a future
//! cell. Spawning and suspending increment it; finishing a task
//! decrements it; a write that reactivates a waiter *transfers* the
//! suspended unit to the queue without touching the counter. The run is
//! over exactly when `live == 0`, and the worker whose decrement reaches
//! zero signals the client. Nothing here needs a timeout.
//!
//! # Idle strategy: spin → yield → park, with no timeout backstop
//!
//! An idle worker spins briefly (new work usually arrives within a few
//! hundred cycles during a parallel phase), then yields, then publishes
//! its index in the `sleepers` bitmask and parks on its own thread token.
//! The predecessor of this design polled a condvar with a 1 ms timeout —
//! the timeout existed because its wakeup path could miss a sleeper. Here
//! the classic lost-wakeup race (store-buffer/Dekker shape) is closed
//! exactly, so parking is indefinite:
//!
//! * the **sleeper** sets its bit with a `SeqCst` RMW, *then* re-checks
//!   every queue, and only parks if all are empty;
//! * the **producer** pushes its task, *then* executes a `SeqCst` fence,
//!   *then* reads the bitmask, and unparks a claimed sleeper.
//!
//! In any interleaving consistent with the single total order on these
//! `SeqCst` operations, either the producer's mask read observes the
//! sleeper's bit (so the sleeper is unparked — `park` consumes the token
//! even if the unpark arrives first), or the sleeper's queue re-check
//! observes the push (so it does not park). A missed wakeup would require
//! both sides to read state older than the other's write, which the fence
//! pair forbids. Waking is therefore a performance hint everywhere else
//! but a guarantee where it matters.
//!
//! # Panic protocol
//!
//! Workers are persistent, so a panicking task must not kill its thread,
//! and the old trick of forcing `live = 0` is unsound here (a concurrent
//! `fetch_sub` would underflow the counter for the *next* session).
//! Instead:
//!
//! 1. the panicking worker stores the payload (first panic wins), raises
//!    `aborting`, and wakes everyone — including the client;
//! 2. each worker finishes its current task normally, then enters an
//!    *abort rendezvous*: it increments `abort_idle` and parks until
//!    `aborting` clears, touching no queue;
//! 3. once `abort_idle` equals the pool size, every worker is provably
//!    idle, so the client single-threadedly drains and drops all queued
//!    tasks, clears `aborting`, wakes the workers back into their normal
//!    loop, and re-throws the payload.
//!
//! Continuations still suspended inside future cells when a run aborts
//! are dropped with the cells that hold them (see `cell.rs` for the one
//! caveat).

use std::any::Any;
use std::panic::resume_unwind;
use std::sync::{Arc, OnceLock};

use crate::sync::atomic::{fence, AtomicBool, AtomicU64, AtomicUsize, Ordering};
use crate::sync::thread::{JoinHandle, Thread};
use crate::sync::{Condvar, Mutex, MutexGuard};

use crate::deque::{deque, Injector, Steal, Stealer};
use crate::scheduler::Worker;
use crate::task::Task;

/// Maximum pool size (sleeper state is one `u64` bitmask).
pub const MAX_WORKERS: usize = 64;

/// Idle rounds spent spinning before yielding. Each idle round is a full
/// `find_task` sweep (it polls every sibling's deque), so a few rounds
/// suffice; long spins just hammer the busy workers' cache lines.
/// Zero under the model checker: spinning only multiplies schedules
/// without adding behaviors, and parking is what the checker must cover.
#[cfg(not(pf_check))]
const SPIN_ROUNDS: u32 = 4;
#[cfg(pf_check)]
const SPIN_ROUNDS: u32 = 0;
/// Idle rounds spent yielding before parking.
#[cfg(not(pf_check))]
const YIELD_ROUNDS: u32 = 2;
#[cfg(pf_check)]
const YIELD_ROUNDS: u32 = 0;

/// Worker thread stack size. Deep recursive structures (future-tailed
/// lists, tall trees) drop with one native frame per element when their
/// last reference dies on a worker; a large lazily-committed reservation
/// makes that a non-issue for any realistic input.
const WORKER_STACK: usize = 256 << 20;

thread_local! {
    static IN_WORKER: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// Per-worker statistics, padded to a cache line so the owner's updates
/// (plain load+store: no other thread writes while a session is live)
/// never contend with a sibling's.
#[repr(align(128))]
#[derive(Default)]
pub(crate) struct WorkerStats {
    tasks_executed: AtomicU64,
    spawns: AtomicU64,
    suspensions: AtomicU64,
    steals: AtomicU64,
}

/// Owner-only increment: cheaper than an atomic RMW, and exact because
/// each counter is written by a single thread at any time.
#[inline]
fn bump(c: &AtomicU64, delta: u64) {
    c.store(
        c.load(Ordering::Relaxed).wrapping_add(delta),
        Ordering::Relaxed,
    );
}

impl WorkerStats {
    #[inline]
    pub(crate) fn add_tasks(&self, k: u64) {
        bump(&self.tasks_executed, k);
    }
    #[inline]
    pub(crate) fn add_spawns(&self, k: u64) {
        bump(&self.spawns, k);
    }
    #[inline]
    pub(crate) fn add_suspensions(&self, k: u64) {
        bump(&self.suspensions, k);
    }
    #[inline]
    pub(crate) fn sub_suspensions(&self, k: u64) {
        bump(&self.suspensions, k.wrapping_neg());
    }
    #[inline]
    pub(crate) fn add_steals(&self, k: u64) {
        bump(&self.steals, k);
    }
    fn reset(&self) {
        self.tasks_executed.store(0, Ordering::Relaxed);
        self.spawns.store(0, Ordering::Relaxed);
        self.suspensions.store(0, Ordering::Relaxed);
        self.steals.store(0, Ordering::Relaxed);
    }
}

/// Execution statistics of one [`Runtime::run_stats`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RunStats {
    /// Closures executed (root + spawned tasks + reactivated waiters).
    pub tasks_executed: u64,
    /// [`Worker::spawn`] calls (a `spawn2` counts twice).
    pub spawns: u64,
    /// Touches that found their cell unwritten and parked in it.
    pub suspensions: u64,
    /// Tasks obtained by stealing from a sibling worker.
    pub steals: u64,
}

/// State shared by the client and every worker of one pool.
pub(crate) struct Shared {
    pub(crate) injector: Injector<Task>,
    pub(crate) stealers: Vec<Stealer<Task>>,
    pub(crate) live: AtomicUsize,
    pub(crate) stats: Vec<WorkerStats>,
    /// Bit *i* set ⇔ worker *i* is parked (or committing to park).
    sleepers: AtomicU64,
    /// Unpark handles, indexed like `stealers`; set once at pool start.
    threads: OnceLock<Vec<Thread>>,
    /// A task panicked; workers rendezvous instead of running tasks.
    aborting: AtomicBool,
    /// Pool teardown: workers exit their loop.
    shutdown: AtomicBool,
    /// Number of workers currently parked in the abort rendezvous.
    abort_idle: AtomicUsize,
    /// First panic payload of the aborting session.
    panic: Mutex<Option<Box<dyn Any + Send>>>,
    /// Session-over flag + condvar the client blocks on.
    done: Mutex<bool>,
    done_cv: Condvar,
}

/// Ignore mutex poisoning: every guarded invariant here is re-established
/// explicitly by the session/abort protocol, not by the guard scope.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

impl Shared {
    /// Wake up to `budget` parked workers. Must be called **after** the
    /// corresponding queue push: the fence orders the push before the
    /// mask read (the producer half of the lost-wakeup argument above).
    pub(crate) fn notify(&self, mut budget: usize) {
        fence(Ordering::SeqCst);
        while budget > 0 {
            let mask = self.sleepers.load(Ordering::Relaxed);
            if mask == 0 {
                return;
            }
            let bit = mask & mask.wrapping_neg();
            // Claim the sleeper so concurrent producers wake distinct
            // workers; the loser of the race retries on the next bit.
            if self.sleepers.fetch_and(!bit, Ordering::SeqCst) & bit != 0 {
                if let Some(threads) = self.threads.get() {
                    threads[bit.trailing_zeros() as usize].unpark();
                }
                budget -= 1;
            }
        }
    }

    fn unpark_all(&self) {
        if let Some(threads) = self.threads.get() {
            for t in threads {
                t.unpark();
            }
        }
    }

    /// Retire one task's liveness unit; the final unit ends the session.
    pub(crate) fn task_done(&self) {
        if self.live.fetch_sub(1, Ordering::AcqRel) == 1 {
            *lock(&self.done) = true;
            self.done_cv.notify_all();
        }
    }

    /// A task panicked: record the payload and start the abort protocol.
    fn begin_abort(&self, payload: Box<dyn Any + Send>) {
        {
            let mut slot = lock(&self.panic);
            if slot.is_none() {
                *slot = Some(payload);
            }
        }
        self.aborting.store(true, Ordering::SeqCst);
        // Wake parked workers into the rendezvous and the client out of
        // its condvar wait (it re-checks `aborting`).
        self.unpark_all();
        let _g = lock(&self.done);
        self.done_cv.notify_all();
    }

    /// Worker side of the abort protocol: report idle, then hold still
    /// (touching no queue) until the client finishes cleaning up.
    fn abort_rendezvous(&self) {
        self.abort_idle.fetch_add(1, Ordering::SeqCst);
        while self.aborting.load(Ordering::SeqCst) && !self.shutdown.load(Ordering::SeqCst) {
            crate::sync::thread::park();
        }
        self.abort_idle.fetch_sub(1, Ordering::SeqCst);
    }
}

// Model builds set SPIN_ROUNDS = YIELD_ROUNDS = 0, making the ladder
// comparisons degenerate (`idle <= 0` on an unsigned counter) — that is
// intended, not a bug, so silence the lint rather than restructure.
#[cfg_attr(pf_check, allow(clippy::absurd_extreme_comparisons))]
fn worker_loop(wk: &Worker) {
    let shared = wk.shared();
    let bit = 1u64 << wk.index();
    let mut idle: u32 = 0;
    loop {
        if shared.shutdown.load(Ordering::Acquire) {
            return;
        }
        if shared.aborting.load(Ordering::Acquire) {
            shared.abort_rendezvous();
            idle = 0;
            continue;
        }
        if let Some(task) = wk.find_task() {
            idle = 0;
            wk.stats().add_tasks(1);
            match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| task.run(wk))) {
                Ok(()) => shared.task_done(),
                Err(payload) => shared.begin_abort(payload),
            }
            continue;
        }
        idle += 1;
        if idle <= SPIN_ROUNDS {
            std::hint::spin_loop();
        } else if idle <= SPIN_ROUNDS + YIELD_ROUNDS {
            crate::sync::thread::yield_now();
        } else {
            // Publish intent to sleep, then re-check: the sleeper half of
            // the lost-wakeup argument (module docs).
            shared.sleepers.fetch_or(bit, Ordering::SeqCst);
            // `pf_check_lost_wakeup` is a *deliberate seeded bug* for the
            // model checker's non-vacuity test (crates/check/tests): it
            // removes this re-check, reopening the classic race where a
            // producer's push lands between the worker's last sweep and
            // its park — the exact bug the re-check exists to close.
            // Never set outside that test.
            #[cfg(not(pf_check_lost_wakeup))]
            if wk.work_available()
                || shared.shutdown.load(Ordering::SeqCst)
                || shared.aborting.load(Ordering::SeqCst)
            {
                shared.sleepers.fetch_and(!bit, Ordering::SeqCst);
                idle = 0;
                continue;
            }
            crate::sync::thread::park();
            // A claiming producer already cleared our bit; clearing again
            // is harmless and also covers spurious unparks.
            shared.sleepers.fetch_and(!bit, Ordering::SeqCst);
            idle = 0;
        }
    }
}

/// A futures runtime with a fixed pool of persistent worker threads.
///
/// Workers are spawned by [`Runtime::new`] and live until the `Runtime`
/// is dropped; each [`Runtime::run`] call executes one computation to
/// quiescence on the same pool. Results written into future cells can be
/// inspected as soon as `run` returns. Concurrent `run` calls on one
/// runtime are serialized.
pub struct Runtime {
    shared: Arc<Shared>,
    /// Serializes sessions; a pool runs one computation at a time.
    session: Mutex<()>,
    handles: Mutex<Vec<JoinHandle<()>>>,
    nthreads: usize,
}

impl Runtime {
    /// A runtime with `nthreads` persistent workers
    /// (`1 ..= `[`MAX_WORKERS`]).
    pub fn new(nthreads: usize) -> Self {
        assert!(
            (1..=MAX_WORKERS).contains(&nthreads),
            "nthreads must be in 1..={MAX_WORKERS}, got {nthreads}"
        );
        let locals: Vec<_> = (0..nthreads).map(|_| deque()).collect();
        let stealers = locals.iter().map(|d| d.stealer()).collect();
        let shared = Arc::new(Shared {
            injector: Injector::new(),
            stealers,
            live: AtomicUsize::new(0),
            stats: (0..nthreads).map(|_| WorkerStats::default()).collect(),
            sleepers: AtomicU64::new(0),
            threads: OnceLock::new(),
            aborting: AtomicBool::new(false),
            shutdown: AtomicBool::new(false),
            abort_idle: AtomicUsize::new(0),
            panic: Mutex::new(None),
            done: Mutex::new(false),
            done_cv: Condvar::new(),
        });
        let handles: Vec<JoinHandle<()>> = locals
            .into_iter()
            .enumerate()
            .map(|(i, local)| {
                let shared = Arc::clone(&shared);
                crate::sync::thread::Builder::new()
                    .name(format!("pf-rt-worker-{i}"))
                    .stack_size(WORKER_STACK)
                    .spawn(move || {
                        IN_WORKER.with(|f| f.set(true));
                        let worker = Worker::new(shared, local, i);
                        worker_loop(&worker);
                    })
                    .expect("failed to spawn worker")
            })
            .collect();
        shared
            .threads
            .set(handles.iter().map(|h| h.thread().clone()).collect())
            .expect("threads set twice");
        Runtime {
            shared,
            session: Mutex::new(()),
            handles: Mutex::new(handles),
            nthreads,
        }
    }

    /// The process-wide default runtime, sized to the available
    /// parallelism. Its workers are spawned on first use and never torn
    /// down. (Unavailable under the model checker: a process-lifetime
    /// pool would leak model threads across executions.)
    #[cfg(not(pf_check))]
    pub fn global() -> &'static Runtime {
        static GLOBAL: OnceLock<Runtime> = OnceLock::new();
        GLOBAL.get_or_init(|| {
            let n = std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
                .min(MAX_WORKERS);
            Runtime::new(n)
        })
    }

    /// A process-wide shared runtime with exactly `nthreads` workers,
    /// created on first request and reused thereafter. This is what
    /// benchmark drivers sweeping thread counts should use: repeated
    /// timings at the same width hit a warm pool instead of paying
    /// thread creation per measurement. (Unavailable under the model
    /// checker, like [`Runtime::global`].)
    #[cfg(not(pf_check))]
    pub fn shared(nthreads: usize) -> Arc<Runtime> {
        use std::collections::HashMap;
        static POOLS: OnceLock<Mutex<HashMap<usize, Arc<Runtime>>>> = OnceLock::new();
        let pools = POOLS.get_or_init(|| Mutex::new(HashMap::new()));
        let mut map = lock(pools);
        Arc::clone(
            map.entry(nthreads)
                .or_insert_with(|| Arc::new(Runtime::new(nthreads))),
        )
    }

    /// Number of worker threads.
    pub fn nthreads(&self) -> usize {
        self.nthreads
    }

    /// Execute `root` and every task it transitively spawns; returns when
    /// the computation is quiescent (every closure has run). Panics in
    /// tasks propagate.
    pub fn run(&self, root: impl FnOnce(&Worker) + Send + 'static) {
        let _ = self.run_stats(root);
    }

    /// [`Runtime::run`], returning execution statistics for this call
    /// only (counters reset at session start).
    pub fn run_stats(&self, root: impl FnOnce(&Worker) + Send + 'static) -> RunStats {
        assert!(
            !IN_WORKER.with(|f| f.get()),
            "Runtime::run called from inside a worker task (would deadlock)"
        );
        let _session = lock(&self.session);
        let shared = &*self.shared;

        // Quiescent between sessions: nothing is running, so plain resets
        // are race-free; the injector push below publishes them.
        for s in &shared.stats {
            s.reset();
        }
        *lock(&shared.done) = false;
        shared.live.store(1, Ordering::Relaxed);
        shared.injector.push(Task::new(root));
        shared.notify(1);

        {
            let mut done = lock(&shared.done);
            while !*done && !shared.aborting.load(Ordering::SeqCst) {
                done = shared.done_cv.wait(done).unwrap_or_else(|e| e.into_inner());
            }
        }
        if shared.aborting.load(Ordering::SeqCst) {
            self.finish_abort();
            let payload = lock(&shared.panic).take().expect("abort without payload");
            resume_unwind(payload);
        }

        debug_assert_eq!(shared.live.load(Ordering::SeqCst), 0);
        let mut out = RunStats::default();
        for s in &shared.stats {
            out.tasks_executed += s.tasks_executed.load(Ordering::Relaxed);
            out.spawns += s.spawns.load(Ordering::Relaxed);
            out.suspensions += s.suspensions.load(Ordering::Relaxed);
            out.steals += s.steals.load(Ordering::Relaxed);
        }
        out
    }

    /// Client side of the abort protocol (module docs, step 3).
    fn finish_abort(&self) {
        let shared = &*self.shared;
        // Wait until all workers sit in the rendezvous: any worker still
        // running a task is not counted, so reaching `nthreads` proves
        // no queue or counter is being touched.
        while shared.abort_idle.load(Ordering::SeqCst) != self.nthreads {
            crate::sync::thread::yield_now();
        }
        // Sole owner of every queue now: drop the unstarted tasks.
        while shared.injector.pop().is_some() {}
        for s in &shared.stealers {
            loop {
                match s.steal() {
                    Steal::Success(task) => {
                        // A destructor panic must not wedge the cleanup.
                        let _ =
                            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| drop(task)));
                    }
                    Steal::Retry => {}
                    Steal::Empty => break,
                }
            }
        }
        shared.aborting.store(false, Ordering::SeqCst);
        shared.unpark_all();
    }
}

impl Drop for Runtime {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.unpark_all();
        for h in lock(&self.handles).drain(..) {
            let _ = h.join();
        }
    }
}
