//! Synchronization shim layer: the single point where `pf_rt` binds to
//! its concurrency primitives.
//!
//! Normally every name here re-exports `std::sync` / `std::thread` and
//! the layer compiles away completely. Under `RUSTFLAGS='--cfg pf_check'`
//! the same names come from `pf_check::sync` instead, routing **every**
//! atomic op, fence, lock, condvar wait, park/unpark, spawn, and yield
//! through pf-check's virtual scheduler so the model checker can explore
//! interleavings deterministically (see `crates/check`).
//!
//! Rules for runtime code:
//!
//! * never name `std::sync::atomic`, `std::sync::{Mutex, Condvar}` or
//!   `std::thread` directly — import from `crate::sync`;
//! * `std`-only types whose uses never block (`Arc`, `OnceLock` in its
//!   set-once/get pattern) stay on `std`: they are invisible to a
//!   scheduler that only needs to see *blocking* and *racing* operations;
//! * anything that can block a model thread on a real OS primitive would
//!   wedge the checker — if you need a new blocking primitive, add it to
//!   `pf_check::sync` first;
//! * timed waits (`Condvar::wait_timeout`, used by the session deadline
//!   and the quiescence watchdog) are `std`-only: the model has no clock,
//!   so that code is `#[cfg(not(pf_check))]` at the call site rather
//!   than shimmed here.
//!
//! The shim seam is also where the chaos layer ([`crate::chaos`],
//! `--cfg pf_chaos`) injects its faults: delays at cell fulfill/touch and
//! the push→wakeup window, denied steals in `find_task`, and panics at
//! task boundaries. Chaos instruments the *call sites* of these
//! primitives rather than wrapping the types, so normal and model builds
//! are untouched (the two cfgs are mutually exclusive).

#[cfg(not(pf_check))]
pub use std::sync::{Condvar, Mutex, MutexGuard};

#[cfg(pf_check)]
pub use pf_check::sync::{Condvar, Mutex, MutexGuard};

/// Atomic types and fences (mirrors `std::sync::atomic`).
pub mod atomic {
    #[cfg(not(pf_check))]
    pub use std::sync::atomic::{
        fence, AtomicBool, AtomicIsize, AtomicPtr, AtomicU64, AtomicU8, AtomicUsize, Ordering,
    };

    #[cfg(pf_check)]
    pub use pf_check::sync::{
        fence, AtomicBool, AtomicIsize, AtomicPtr, AtomicU64, AtomicU8, AtomicUsize, Ordering,
    };
}

/// Thread spawn/park/unpark/yield (mirrors `std::thread`).
pub mod thread {
    #[cfg(not(pf_check))]
    pub use std::thread::{current, park, spawn, yield_now, Builder, JoinHandle, Thread};

    #[cfg(pf_check)]
    pub use pf_check::sync::thread::{
        current, park, spawn, yield_now, Builder, JoinHandle, Thread,
    };
}
