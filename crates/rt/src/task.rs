//! Compact task representation: a spawned closure without a mandatory
//! heap allocation.
//!
//! The paper charges a future fork constant time — "one allocation plus
//! one deque push" — but on real hardware the allocation dominates for
//! the tiny continuations fine-grained tree algorithms spawn. A [`Task`]
//! is therefore a fixed six-word value:
//!
//! ```text
//! ┌──────────────────────────────┬───────────┬───────────┐
//! │ payload: [usize; 4]          │ call fn   │ drop fn   │
//! └──────────────────────────────┴───────────┴───────────┘
//! ```
//!
//! * A closure of at most four words (and word alignment) is stored
//!   **inline** in the payload — spawning it never touches the allocator.
//!   Tree-algorithm child closures fit this budget: a couple of `Arc`s /
//!   node pointers, plus the one-byte evaluation `Mode` the generic
//!   `pf_algs` recursions thread through their spawned continuations
//!   (three pointers + mode pads to four words; a three-word payload
//!   would push every generic fork through the boxed fallback and break
//!   allocation parity with hand-written CPS).
//! * A larger closure falls back to one `Box`; only the two-word fat
//!   pointer is stored inline.
//! * An **already-boxed** continuation (a reactivated future-cell waiter)
//!   is adopted via [`Task::from_boxed`] without re-boxing — the fix for
//!   the old double allocation in `FutWrite::fulfill`.
//!
//! The `call` fn consumes the payload; the `drop` fn releases it when a
//! task is destroyed without running (runtime teardown after a panic).

use std::mem::{align_of, size_of, ManuallyDrop, MaybeUninit};

use crate::scheduler::Worker;

/// Payload capacity, in machine words.
const INLINE_WORDS: usize = 4;

type Payload = MaybeUninit<[usize; INLINE_WORDS]>;
type BoxedFn = Box<dyn FnOnce(&Worker) + Send>;
type RawFat = *mut (dyn FnOnce(&Worker) + Send);

/// Does `F` fit the inline payload?
const fn fits_inline<F>() -> bool {
    size_of::<F>() <= size_of::<[usize; INLINE_WORDS]>() && align_of::<F>() <= align_of::<usize>()
}

/// A unit of work: a one-shot continuation, stored inline when small.
pub struct Task {
    payload: Payload,
    /// Consumes the payload and runs the continuation.
    call: unsafe fn(*mut Payload, &Worker),
    /// Releases the payload without running it.
    drop_in_place: unsafe fn(*mut Payload),
}

// SAFETY: a Task is constructed only from `F: Send` closures (or already
// `Send` boxed ones), and it owns its payload exclusively.
unsafe impl Send for Task {}

unsafe fn call_inline<F: FnOnce(&Worker)>(p: *mut Payload, wk: &Worker) {
    // SAFETY (caller): payload holds a valid `F`, consumed exactly once.
    let f = unsafe { (p as *mut F).read() };
    f(wk);
}

unsafe fn drop_inline<F>(p: *mut Payload) {
    // SAFETY (caller): payload holds a valid `F`, dropped exactly once.
    unsafe { std::ptr::drop_in_place(p as *mut F) };
}

unsafe fn call_boxed(p: *mut Payload, wk: &Worker) {
    // SAFETY (caller): payload holds a fat pointer from `Box::into_raw`.
    let b = unsafe { Box::from_raw((p as *mut RawFat).read()) };
    b(wk);
}

unsafe fn drop_boxed(p: *mut Payload) {
    // SAFETY (caller): payload holds a fat pointer from `Box::into_raw`.
    drop(unsafe { Box::from_raw((p as *mut RawFat).read()) });
}

impl Task {
    /// Package `f`, inline when it fits, boxed otherwise.
    pub fn new<F>(f: F) -> Task
    where
        F: FnOnce(&Worker) + Send + 'static,
    {
        if fits_inline::<F>() {
            let mut payload = Payload::uninit();
            // SAFETY: `fits_inline` checked size and alignment.
            unsafe { (payload.as_mut_ptr() as *mut F).write(f) };
            Task {
                payload,
                call: call_inline::<F>,
                drop_in_place: drop_inline::<F>,
            }
        } else {
            Task::from_boxed(Box::new(f))
        }
    }

    /// Adopt an already-boxed continuation without re-boxing it. This is
    /// the hand-off path for reactivated future-cell waiters: the box the
    /// toucher allocated at suspension time is the box the scheduler
    /// frees after running it.
    pub fn from_boxed(b: BoxedFn) -> Task {
        const {
            assert!(
                size_of::<RawFat>() <= size_of::<[usize; INLINE_WORDS]>(),
                "fat pointer must fit the inline payload"
            );
        }
        let raw: RawFat = Box::into_raw(b);
        let mut payload = Payload::uninit();
        // SAFETY: a fat pointer is two words, within the payload.
        unsafe { (payload.as_mut_ptr() as *mut RawFat).write(raw) };
        Task {
            payload,
            call: call_boxed,
            drop_in_place: drop_boxed,
        }
    }

    /// Run the continuation, consuming the task.
    pub fn run(self, wk: &Worker) {
        let mut this = ManuallyDrop::new(self);
        // SAFETY: `self` is consumed and Drop is suppressed, so the
        // payload is read exactly once.
        unsafe { (this.call)(&mut this.payload, wk) };
    }
}

impl Drop for Task {
    fn drop(&mut self) {
        // SAFETY: only reached when `run` was never called, so the
        // payload is still live; it is released exactly once here.
        unsafe { (self.drop_in_place)(&mut self.payload) };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Runtime;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    #[test]
    fn small_closures_are_inline() {
        assert!(fits_inline::<fn(&Worker)>());
        struct Four(#[allow(dead_code)] [usize; 4]);
        assert!(fits_inline::<Four>());
        struct Five(#[allow(dead_code)] [usize; 5]);
        assert!(!fits_inline::<Five>());
    }

    #[test]
    fn task_is_six_words() {
        assert_eq!(size_of::<Task>(), 6 * size_of::<usize>());
    }

    #[test]
    fn inline_and_boxed_tasks_run() {
        let hits = Arc::new(AtomicU64::new(0));
        let (h1, h2, h3) = (hits.clone(), hits.clone(), hits.clone());
        Runtime::new(1).run(move |wk| {
            // One Arc: inline.
            Task::new(move |_wk: &Worker| {
                h1.fetch_add(1, Ordering::Relaxed);
            })
            .run(wk);
            // Large capture: boxed fallback.
            let big = [7u64; 16];
            Task::new(move |_wk: &Worker| {
                assert_eq!(big[15], 7);
                h2.fetch_add(1, Ordering::Relaxed);
            })
            .run(wk);
            // Pre-boxed adoption.
            Task::from_boxed(Box::new(move |_wk: &Worker| {
                h3.fetch_add(1, Ordering::Relaxed);
            }))
            .run(wk);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn unrun_tasks_release_captures() {
        let token = Arc::new(());
        let small = Task::new({
            let t = Arc::clone(&token);
            move |_wk: &Worker| drop(t)
        });
        let big = Task::new({
            let t = Arc::clone(&token);
            let pad = [0u64; 8];
            move |_wk: &Worker| {
                let _ = pad;
                drop(t);
            }
        });
        let boxed = Task::from_boxed(Box::new({
            let t = Arc::clone(&token);
            move |_wk: &Worker| drop(t)
        }));
        assert_eq!(Arc::strong_count(&token), 4);
        drop(small);
        drop(big);
        drop(boxed);
        assert_eq!(Arc::strong_count(&token), 1);
    }
}
