//! The per-worker execution context of the work-stealing scheduler:
//! per-worker LIFO deques (the paper's stack discipline), a global
//! injector, and the liveness accounting that drives quiescence
//! detection. The pool that hosts workers — thread lifecycle, parking,
//! the session table, abort and panic protocols — lives in
//! [`crate::pool`].
//!
//! Every queued task is a [`SessionTask`]: the closure plus the `Arc` of
//! its owning session's slot. A worker is a *session-free* resource — it
//! executes whatever task it finds, entering that task's session for the
//! duration (`current` below), so tasks of concurrent sessions
//! interleave freely on one pool. All per-session accounting (liveness
//! units, statistics, abort checks, policy dispatch, trace lanes) goes
//! through the current slot, never through pool state.
//!
//! Liveness accounting (the invariant behind termination detection): the
//! owning slot's counter holds the number of closures that are queued,
//! running, or suspended in a future cell. It is incremented by
//! [`Worker::spawn`] and by a touch that suspends (`note_suspend`), and
//! decremented when a task finishes. A write that reactivates a waiter
//! transfers the suspended unit to the queue without changing the count
//! (`resume_transferred`). When the counter reaches zero the session is
//! quiescent and [`Runtime::run`] returns.

use std::cell::Cell;
use std::sync::{Arc, Weak};

use crate::deque::{LocalQueue, Steal, MAX_STEAL_BATCH};
use crate::error::PoisonTarget;
use crate::policy::{ResumePlace, SchedPolicy, SpawnOrder, StealKind, VictimSelect};
use crate::pool::{AbortReason, SessionSlot, SessionTask, Shared, WorkerStats};
use crate::task::Task;

pub use crate::pool::{RunStats, Runtime};

/// Maximum depth of inline continuation execution before a ready touch is
/// deferred to the queue instead — bounds native stack growth on long
/// ready chains (e.g. list pipelines whose producer runs ahead).
const MAX_INLINE_DEPTH: usize = 128;

/// The per-thread execution context handed to every task.
pub struct Worker {
    shared: Arc<Shared>,
    local: LocalQueue<SessionTask>,
    index: usize,
    /// The slot of the session whose task this worker is currently
    /// executing; null between tasks. A raw pointer, not an `Arc`: the
    /// executing frame ([`Worker::execute`], or an inline-resume frame)
    /// keeps the slot alive for as long as the pointer is published, so
    /// per-task session entry costs two `Cell` stores instead of two
    /// reference-count RMWs.
    current: Cell<*const SessionSlot>,
    inline_depth: Cell<usize>,
    steal_seed: Cell<u64>,
    /// Last victim a steal succeeded against (own index = none yet);
    /// consulted first under [`VictimSelect::LastVictimFirst`].
    last_victim: Cell<usize>,
}

impl Worker {
    pub(crate) fn new(shared: Arc<Shared>, local: LocalQueue<SessionTask>, index: usize) -> Worker {
        Worker {
            shared,
            local,
            index,
            current: Cell::new(std::ptr::null()),
            inline_depth: Cell::new(0),
            steal_seed: Cell::new(0x9E3779B97F4A7C15 ^ (index as u64) << 7),
            last_victim: Cell::new(index),
        }
    }

    /// The slot of the session this worker is currently executing a task
    /// of. Callable only from inside a task (spawns, touches, fulfills,
    /// trace hooks) — between tasks there is no current session.
    #[inline]
    pub(crate) fn session(&self) -> &SessionSlot {
        let p = self.current.get();
        debug_assert!(!p.is_null(), "no current session (outside a task body)");
        // SAFETY: non-null only between `execute`'s (or an inline resume
        // frame's) enter/exit stores, and that frame owns an `Arc` to the
        // slot for the whole window, so the referent outlives the borrow
        // (which cannot escape the task body: tasks don't return borrows).
        unsafe { &*p }
    }

    /// A new `Arc` to the current session's slot (for tagging a task
    /// being pushed to a queue).
    #[inline]
    pub(crate) fn clone_session(&self) -> Arc<SessionSlot> {
        let p = self.current.get();
        debug_assert!(!p.is_null(), "no current session (outside a task body)");
        // SAFETY: `p` came from `Arc::as_ptr` of a live `Arc` (see
        // `session`), so reconstructing a counted handle is sound.
        unsafe {
            Arc::increment_strong_count(p);
            Arc::from_raw(p)
        }
    }

    /// The scheduling policy of the current session (a byte unpack from
    /// the slot's immutable word; see `policy.rs`).
    #[inline]
    pub fn policy(&self) -> SchedPolicy {
        self.session().policy()
    }

    #[inline]
    pub(crate) fn shared(&self) -> &Shared {
        &self.shared
    }

    /// This worker's statistics entry *of the current session*.
    #[inline]
    pub(crate) fn stats(&self) -> &WorkerStats {
        &self.session().stats[self.index]
    }

    /// Skip the wakeup fence when this is the pool's only worker: no
    /// sibling exists to wake, and the client never sleeps on the work
    /// queues (only on the session-done condvar).
    #[inline]
    fn notify_push(&self, n: usize) {
        if self.shared.stealers.len() > 1 {
            self.shared.notify(n);
        }
    }

    /// Execute one found task: enter its session, run the body, retire
    /// its liveness unit; a panic aborts the owning session (only). When
    /// the owning session is already aborting, the task is discarded
    /// unrun — dropped (releasing its captures), its unit retired — so an
    /// abort drains the session's queued work at pop speed without a
    /// worker rendezvous. Returns the slot for the caller's park/unpark
    /// trace attribution.
    pub(crate) fn execute(&self, st: SessionTask) -> Arc<SessionSlot> {
        let SessionTask { session, task } = st;
        if session.aborting() {
            // A capture's Drop may panic (it may touch a poisoned cell);
            // contain that like any task panic — the session is already
            // aborting, so there is nobody left to tell.
            let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| drop(task)));
            session.task_done();
            return session;
        }
        let prev = self.current.replace(Arc::as_ptr(&session));
        session.stats[self.index].add_tasks(1);
        session.stats[self.index].add_progress();
        crate::trace::exec(self);
        let res = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            // Chaos seams: a seeded probability of a spurious panic right
            // here exercises the whole abort path, and a seeded wedge
            // parks this worker mid-task to exercise the stall detectors
            // (both off outside pf_chaos).
            crate::chaos::maybe_panic();
            crate::chaos::maybe_wedge(&|| session.aborting());
            task.run(self);
        }));
        self.current.set(prev);
        if let Err(payload) = res {
            // File the reason before retiring the unit: when this was the
            // session's last queued-or-running task, the client must wake
            // to a filed reason, not to a clean finish.
            session.request_abort(AbortReason::Panic(payload));
        }
        session.task_done();
        session
    }

    /// Spawn `f` as a new task (a future fork). The paper charges this
    /// constant time: one deque push, with an allocation only when the
    /// closure exceeds the inline [`Task`] payload.
    ///
    /// Under [`SpawnOrder::ChildFirst`] the child runs *inline*, right
    /// now, and the caller continues when it returns (work-first,
    /// depth-guarded like every inline path). The accounting is kept
    /// identical to the push path — the child still counts as one spawn
    /// and one executed task — so `RunStats`/trace totals are policy-
    /// independent; only the liveness counter skips its round-trip (the
    /// child runs inside the caller's unit).
    pub fn spawn(&self, f: impl FnOnce(&Worker) + Send + 'static) {
        if self.policy().spawn == SpawnOrder::ChildFirst {
            let d = self.inline_depth.get();
            if d < MAX_INLINE_DEPTH {
                self.stats().add_spawns(1);
                self.stats().add_progress();
                crate::trace::spawn(self, 1);
                self.stats().add_tasks(1);
                crate::trace::exec(self);
                self.inline_depth.set(d + 1);
                f(self);
                self.inline_depth.set(d);
                return;
            }
        }
        let session = self.clone_session();
        session.add_units(1);
        self.stats().add_spawns(1);
        self.stats().add_progress();
        crate::trace::spawn(self, 1);
        self.local.push(SessionTask {
            session,
            task: Task::new(f),
        });
        self.notify_push(1);
    }

    /// Spawn two tasks with one round of liveness/stat accounting — the
    /// two-child fan-out every tree algorithm performs at each internal
    /// node. Equivalent to two [`Worker::spawn`] calls (`g` is pushed
    /// last, so a LIFO owner pops it first) but with a single
    /// `fetch_add(2)` on the session's liveness counter.
    ///
    /// Under [`SpawnOrder::ChildFirst`], `f` is pushed (one stealable
    /// child per fork, preserving the paper's parallelism) and `g` runs
    /// inline first — the same order a LIFO owner would pop.
    pub fn spawn2(
        &self,
        f: impl FnOnce(&Worker) + Send + 'static,
        g: impl FnOnce(&Worker) + Send + 'static,
    ) {
        if self.policy().spawn == SpawnOrder::ChildFirst {
            let d = self.inline_depth.get();
            if d < MAX_INLINE_DEPTH {
                let session = self.clone_session();
                session.add_units(1);
                self.stats().add_spawns(2);
                self.stats().add_progress();
                crate::trace::spawn(self, 2);
                self.local.push(SessionTask {
                    session,
                    task: Task::new(f),
                });
                self.notify_push(1);
                self.stats().add_tasks(1);
                crate::trace::exec(self);
                self.inline_depth.set(d + 1);
                g(self);
                self.inline_depth.set(d);
                return;
            }
        }
        let session = self.clone_session();
        session.add_units(2);
        self.stats().add_spawns(2);
        self.stats().add_progress();
        crate::trace::spawn(self, 2);
        self.local.push(SessionTask {
            session: Arc::clone(&session),
            task: Task::new(f),
        });
        self.local.push(SessionTask {
            session,
            task: Task::new(g),
        });
        self.notify_push(2);
    }

    /// Spawn an already-boxed continuation without re-boxing it.
    pub(crate) fn spawn_boxed(&self, f: Box<dyn FnOnce(&Worker) + Send>) {
        let session = self.clone_session();
        session.add_units(1);
        self.stats().add_spawns(1);
        self.stats().add_progress();
        crate::trace::spawn(self, 1);
        self.local.push(SessionTask {
            session,
            task: Task::from_boxed(f),
        });
        self.notify_push(1);
    }

    /// Enqueue a reactivated waiter onto our own deque (its suspended
    /// mark must already be cleared — see [`Worker::resume_transferred`],
    /// the only caller besides the policy fallbacks).
    fn enqueue_transferred(&self, st: SessionTask) {
        crate::trace::resume(self, &st.session);
        self.local.push(st);
        self.notify_push(1);
    }

    /// Policy-dispatched resume of a reactivated waiter: the fulfill
    /// side of every suspended touch routes through here. `owner` is the
    /// index of the worker that *suspended* the continuation (recorded
    /// by the touch; meaningful only under [`ResumePlace::Mailbox`]).
    /// Dispatches on the **waiter's** session's policy — under
    /// cross-session fulfills, the session that suspended decides how it
    /// is resumed.
    ///
    /// The waiter's suspended mark is cleared here, *before* any push:
    /// the abort wait's safe point (`low == high`) must never observe a
    /// queued task it believes suspended.
    ///
    /// * [`ResumePlace::FulfillerDeque`] — push onto the fulfiller's own
    ///   deque (the default).
    /// * [`ResumePlace::Inline`] — run the waiter right now inside the
    ///   fulfilling task (depth-guarded; falls back to the deque). Only
    ///   taken when the waiter belongs to the session we are currently
    ///   executing: an inline body runs under *our* current slot, so a
    ///   foreign waiter (cross-session mutex-cell fulfill) takes the
    ///   deque path and is re-entered properly. Its liveness unit is
    ///   retired here, which cannot end the session early: the waiter
    ///   belongs to our session, whose current task still holds its own
    ///   unit.
    /// * [`ResumePlace::Mailbox`] — hand it to `owner`'s mailbox and
    ///   wake that worker. Mailbox tasks are never stolen; the owner
    ///   polls its mailbox in `find_task` (and in the pre-park re-check,
    ///   which makes the handoff lost-wakeup-free by the same fence
    ///   argument as `notify`).
    pub(crate) fn resume_transferred(&self, st: SessionTask, owner: usize) {
        // The resume is progress of the *waiter's* session (which may not
        // be the one we are currently executing, under a cross-session
        // mutex-cell fulfill): tick its lane for this worker — entry i is
        // still written only by worker i, whatever slot it lives in.
        st.session.stats[self.index].add_progress();
        st.session.transfer_resume();
        match st.session.policy().resume {
            ResumePlace::FulfillerDeque => self.enqueue_transferred(st),
            ResumePlace::Inline => {
                let d = self.inline_depth.get();
                if d < MAX_INLINE_DEPTH
                    && std::ptr::eq(Arc::as_ptr(&st.session), self.current.get())
                {
                    let SessionTask { session, task } = st;
                    crate::trace::resume(self, &session);
                    session.stats[self.index].add_tasks(1);
                    crate::trace::exec(self);
                    self.inline_depth.set(d + 1);
                    task.run(self);
                    self.inline_depth.set(d);
                    session.task_done();
                } else {
                    self.enqueue_transferred(st);
                }
            }
            ResumePlace::Mailbox => {
                crate::trace::resume(self, &st.session);
                let own = owner == self.index;
                self.shared.mailboxes[owner].push(st);
                if own {
                    // Our own mailbox: we are running, so `find_task`
                    // will see it — no wake needed.
                } else {
                    self.shared.notify_worker(owner);
                }
            }
        }
    }

    /// Account a continuation that is being suspended into a future cell.
    pub(crate) fn note_suspend(&self) {
        self.session().note_suspend();
        self.stats().add_suspensions(1);
        self.stats().add_progress();
    }

    /// Undo [`Worker::note_suspend`] when the suspension raced a write and
    /// the continuation runs immediately after all.
    pub(crate) fn unnote_suspend(&self) {
        self.session().unnote_suspend();
        self.stats().sub_suspensions(1);
        self.stats().add_progress();
    }

    /// One heartbeat tick on the current session's progress epoch (see
    /// pool.rs). Called by the cell fulfill paths, so a long-running task
    /// that keeps fulfilling cells counts as progressing even when no
    /// waiter was resumed by the write.
    #[inline]
    pub(crate) fn note_progress(&self) {
        self.stats().add_progress();
    }

    /// Run a ready continuation inline (bounded depth), or spawn it when
    /// the native stack is already deep.
    pub(crate) fn run_inline_or_spawn<T: Send + 'static>(
        &self,
        v: T,
        cont: impl FnOnce(T, &Worker) + Send + 'static,
    ) {
        let d = self.inline_depth.get();
        if d < MAX_INLINE_DEPTH {
            self.inline_depth.set(d + 1);
            cont(v, self);
            self.inline_depth.set(d);
        } else {
            self.spawn(move |wk| cont(v, wk));
        }
    }

    /// [`Worker::run_inline_or_spawn`] for an already-boxed continuation
    /// (a waiter reclaimed after its suspension raced the write).
    pub(crate) fn run_boxed_inline_or_spawn(&self, cont: Box<dyn FnOnce(&Worker) + Send>) {
        let d = self.inline_depth.get();
        if d < MAX_INLINE_DEPTH {
            self.inline_depth.set(d + 1);
            cont(self);
            self.inline_depth.set(d);
        } else {
            self.spawn_boxed(cont);
        }
    }

    /// This worker's index (0-based).
    pub fn index(&self) -> usize {
        self.index
    }

    /// Id of the session whose task this worker is currently executing
    /// (sessions are numbered from 1 per pool; 0 outside any task).
    /// Diagnostic: it names the session in cell panic messages and
    /// [`crate::PoisonInfo`].
    pub fn session_id(&self) -> u64 {
        let p = self.current.get();
        if p.is_null() {
            0
        } else {
            // SAFETY: see `session`.
            unsafe { (*p).id }
        }
    }

    /// Has the current task's session been asked to abort (a panic
    /// elsewhere in it, a fired [`crate::CancelToken`], an expired
    /// deadline)? Long-running task bodies should poll this and return
    /// early: the runtime never preempts a running closure, so
    /// cancellation latency is bounded by the longest closure that
    /// ignores it. Sibling sessions' aborts are invisible here.
    pub fn cancelled(&self) -> bool {
        self.session().aborting()
    }

    /// Record a cell this worker just suspended a continuation into, so
    /// an abort of the owning session can poison it (see pool.rs).
    pub(crate) fn register_suspend(&self, cell: Weak<dyn PoisonTarget>) {
        self.session().register_suspend(cell);
    }

    pub(crate) fn find_task(&self) -> Option<SessionTask> {
        if let Some(t) = self.local.pop() {
            return Some(t);
        }
        // Continuations handed to us by a mailbox resume are next after
        // our own deque: they are ours alone (never stolen) and their
        // working set is the locality the mailbox policy exists to
        // exploit. Checked unconditionally — any *session* may run under
        // the mailbox policy, and between tasks there is no current
        // session to consult; off-policy the mailbox is always empty.
        if let Some(t) = self.shared.mailboxes[self.index].pop() {
            return Some(t);
        }
        // Injector, then siblings — per the pool's hunt policy (the
        // steal axes; an idle worker serves every session at once).
        if let Some(t) = self.shared.injector.pop() {
            return Some(t);
        }
        let policy = self.shared.hunt_policy();
        let n = self.shared.stealers.len();
        // A productive victim tends to stay productive: retry it before
        // sweeping (chaos may veto the shortcut like any steal attempt).
        if policy.victim == VictimSelect::LastVictimFirst {
            let lv = self.last_victim.get();
            if lv != self.index && !crate::chaos::steal_denied() {
                if let Some(t) = self.try_steal(lv, policy.steal) {
                    return Some(t);
                }
            }
        }
        // Full sweep from a pseudo-random start.
        let mut seed = self.steal_seed.get();
        seed = seed
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.steal_seed.set(seed);
        let start = (seed >> 33) as usize % n;
        for k in 0..n {
            let v = (start + k) % n;
            if v == self.index {
                continue;
            }
            // Chaos seam: a denied steal skips this victim, modeling
            // transient steal failure (no-op outside `--cfg pf_chaos`).
            // Safe: denial only delays acquisition, and the sleeper
            // re-check before parking polls the real queues.
            if crate::chaos::steal_denied() {
                continue;
            }
            if let Some(t) = self.try_steal(v, policy.steal) {
                return Some(t);
            }
        }
        None
    }

    /// One steal attempt against victim `v`, retrying CAS races until
    /// the victim is observed empty. Steal-half claims up to
    /// [`MAX_STEAL_BATCH`] tasks — the first is returned, the extras
    /// land in our own deque (and become visible to *other* thieves, so
    /// they are advertised with a notify). The steals counter and trace
    /// both record the number of tasks moved, so `RunStats::steals`
    /// keeps meaning "tasks obtained by stealing" under every policy.
    /// The episode is accounted to the *first* stolen task's session —
    /// under steal-half a batch can span sessions, a documented
    /// attribution approximation (counts stay exact in total).
    fn try_steal(&self, v: usize, kind: StealKind) -> Option<SessionTask> {
        loop {
            let got = match kind {
                StealKind::One => match self.shared.stealers[v].steal() {
                    Steal::Success(t) => Some((t, 0)),
                    Steal::Retry => continue,
                    Steal::Empty => None,
                },
                StealKind::Half => {
                    match self.shared.stealers[v].steal_half_into(&self.local, MAX_STEAL_BATCH) {
                        Steal::Success((t, extra)) => Some((t, extra)),
                        Steal::Retry => continue,
                        Steal::Empty => None,
                    }
                }
            };
            return match got {
                Some((t, extra)) => {
                    t.session.stats[self.index].add_steals(1 + extra as u64);
                    crate::trace::steal(self, &t.session, v, 1 + extra as u64);
                    self.last_victim.set(v);
                    if extra > 0 {
                        self.notify_push(extra);
                    }
                    Some(t)
                }
                None => None,
            };
        }
    }

    // Unused under the seeded lost-wakeup mutation (its only caller is
    // the sleeper re-check that the mutation removes).
    #[cfg_attr(pf_check_lost_wakeup, allow(dead_code))]
    pub(crate) fn work_available(&self) -> bool {
        !self.local.is_empty()
            || !self.shared.mailboxes[self.index].is_empty()
            || !self.shared.injector.is_empty()
            || self
                .shared
                .stealers
                .iter()
                .enumerate()
                .any(|(i, s)| i != self.index && !s.is_empty())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell;
    use crate::sync::atomic::Ordering;
    use std::sync::atomic::AtomicU64;
    use std::sync::{Arc, Mutex};

    #[test]
    fn runs_root_to_completion() {
        let (w, r) = cell::<u32>();
        Runtime::new(1).run(move |wk| w.fulfill(wk, 7));
        assert_eq!(r.expect(), 7);
    }

    #[test]
    fn spawns_fan_out() {
        let counter = Arc::new(AtomicU64::new(0));
        let c2 = Arc::clone(&counter);
        Runtime::new(4).run(move |wk| {
            for _ in 0..1000 {
                let c = Arc::clone(&c2);
                wk.spawn(move |_| {
                    c.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), 1000);
    }

    #[test]
    fn nested_spawns() {
        let counter = Arc::new(AtomicU64::new(0));
        let c2 = Arc::clone(&counter);
        fn rec(wk: &Worker, depth: usize, c: Arc<AtomicU64>) {
            c.fetch_add(1, Ordering::Relaxed);
            if depth > 0 {
                let (a, b) = (Arc::clone(&c), c);
                wk.spawn(move |wk| rec(wk, depth - 1, a));
                wk.spawn(move |wk| rec(wk, depth - 1, b));
            }
        }
        Runtime::new(4).run(move |wk| rec(wk, 10, c2));
        assert_eq!(counter.load(Ordering::Relaxed), (1 << 11) - 1);
    }

    #[test]
    fn spawn2_matches_two_spawns() {
        let counter = Arc::new(AtomicU64::new(0));
        let c2 = Arc::clone(&counter);
        fn rec(wk: &Worker, depth: usize, c: Arc<AtomicU64>) {
            c.fetch_add(1, Ordering::Relaxed);
            if depth > 0 {
                let (a, b) = (Arc::clone(&c), c);
                wk.spawn2(
                    move |wk| rec(wk, depth - 1, a),
                    move |wk| rec(wk, depth - 1, b),
                );
            }
        }
        let stats = Runtime::new(4).run_stats(move |wk| rec(wk, 10, c2));
        assert_eq!(counter.load(Ordering::Relaxed), (1 << 11) - 1);
        assert_eq!(stats.spawns, (1 << 11) - 2);
        assert_eq!(stats.tasks_executed, (1 << 11) - 1);
    }

    #[test]
    fn single_thread_still_terminates() {
        let counter = Arc::new(AtomicU64::new(0));
        let c2 = Arc::clone(&counter);
        Runtime::new(1).run(move |wk| {
            fn rec(wk: &Worker, d: usize, c: Arc<AtomicU64>) {
                c.fetch_add(1, Ordering::Relaxed);
                if d > 0 {
                    wk.spawn(move |wk| rec(wk, d - 1, c));
                }
            }
            rec(wk, 5000, c2);
        });
        assert_eq!(counter.load(Ordering::Relaxed), 5001);
    }

    #[test]
    fn worker_indices_cover_pool() {
        let seen = Arc::new(Mutex::new(std::collections::BTreeSet::new()));
        let s2 = Arc::clone(&seen);
        Runtime::new(4).run(move |wk| {
            for _ in 0..4000 {
                let s = Arc::clone(&s2);
                wk.spawn(move |wk| {
                    s.lock().unwrap().insert(wk.index());
                    std::thread::yield_now();
                });
            }
        });
        // With 4000 tiny tasks, stealing should engage several workers.
        assert!(seen.lock().unwrap().len() >= 2, "stealing never happened");
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn task_panic_propagates() {
        Runtime::new(3).run(|wk| {
            wk.spawn(|_| panic!("boom"));
        });
    }

    #[test]
    fn pool_survives_a_panicked_run() {
        let rt = Runtime::new(3);
        for round in 0..10 {
            let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                rt.run(move |wk| {
                    for _ in 0..100 {
                        wk.spawn(|_| {});
                    }
                    wk.spawn(|_| panic!("kaboom"));
                    for _ in 0..100 {
                        wk.spawn(|_| {});
                    }
                });
            }));
            assert!(r.is_err(), "round {round}: panic was swallowed");
            // The same pool must keep working after the abort.
            let stats = rt.run_stats(|wk| {
                wk.spawn(|_| {});
            });
            assert_eq!(stats.spawns, 1);
            assert_eq!(stats.tasks_executed, 2);
        }
    }

    #[test]
    #[should_panic(expected = "inside a worker task")]
    fn nested_run_panics() {
        let rt = Runtime::new(2);
        rt.run(|_wk| {
            Runtime::new(1).run(|_| {});
        });
    }

    #[test]
    fn run_stats_account_tasks_and_suspensions() {
        let (w, r) = cell::<u32>();
        let stats = Runtime::new(2).run_stats(move |wk| {
            // Suspend first, write later: exactly one suspension.
            r.touch(wk, |_, _| {});
            for _ in 0..10 {
                wk.spawn(|_| {});
            }
            wk.spawn(move |wk| w.fulfill(wk, 1));
        });
        assert_eq!(stats.spawns, 11);
        assert_eq!(stats.suspensions, 1);
        // root + 11 spawns + 1 reactivated waiter.
        assert_eq!(stats.tasks_executed, 13);
    }

    #[test]
    fn run_stats_zero_suspensions_when_ordered() {
        let (w, r) = cell::<u32>();
        let stats = Runtime::new(1).run_stats(move |wk| {
            w.fulfill(wk, 1);
            r.touch(wk, |_, _| {});
        });
        assert_eq!(stats.suspensions, 0);
        assert_eq!(stats.tasks_executed, 1);
        assert_eq!(stats.steals, 0, "single worker cannot steal");
    }

    #[test]
    fn repeated_runs_are_independent() {
        for i in 0..50 {
            let (w, r) = cell::<usize>();
            Runtime::new(3).run(move |wk| {
                wk.spawn(move |wk| w.fulfill(wk, i));
            });
            assert_eq!(r.expect(), i);
        }
    }

    #[test]
    fn one_pool_many_runs() {
        let rt = Runtime::new(3);
        for i in 0..200 {
            let (w, r) = cell::<usize>();
            rt.run(move |wk| {
                wk.spawn(move |wk| w.fulfill(wk, i));
            });
            assert_eq!(r.expect(), i);
        }
    }

    #[test]
    fn global_and_shared_pools() {
        let g = Runtime::global();
        assert!(g.nthreads() >= 1);
        let (w, r) = cell::<u32>();
        g.run(move |wk| w.fulfill(wk, 3));
        assert_eq!(r.expect(), 3);

        let a = Runtime::shared(2);
        let b = Runtime::shared(2);
        assert!(Arc::ptr_eq(&a, &b), "shared(2) must return one pool");
        let (w, r) = cell::<u32>();
        a.run(move |wk| w.fulfill(wk, 9));
        assert_eq!(r.expect(), 9);
    }
}
