//! The work-stealing scheduler: per-worker LIFO deques (the paper's stack
//! discipline), a global injector, condvar-based parking, and quiescence
//! detection through a live-closure counter.
//!
//! Liveness accounting (the invariant behind termination detection): the
//! counter holds the number of closures that are queued, running, or
//! suspended in a future cell. It is incremented by [`Worker::spawn`] and
//! by a touch that suspends (`note_suspend`), and decremented
//! when a task finishes. A write that reactivates a waiter transfers the
//! suspended unit to the queue without changing the count
//! (`enqueue_transferred`). When the counter reaches zero the
//! computation is quiescent and [`Runtime::run`] returns.

use std::cell::Cell;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::Duration;

use crossbeam_deque::{Injector, Stealer, Worker as Deque};
use parking_lot::{Condvar, Mutex};

/// A unit of work: a boxed continuation.
pub type Task = Box<dyn FnOnce(&Worker) + Send>;

/// Maximum depth of inline continuation execution before a ready touch is
/// deferred to the queue instead — bounds native stack growth on long
/// ready chains (e.g. list pipelines whose producer runs ahead).
const MAX_INLINE_DEPTH: usize = 128;

/// Worker thread stack size. Deep recursive structures (future-tailed
/// lists, tall trees) drop with one native frame per element when their
/// last reference dies on a worker; a large lazily-committed reservation
/// makes that a non-issue for any realistic input.
const WORKER_STACK: usize = 256 << 20;

struct Shared {
    injector: Injector<Task>,
    stealers: Vec<Stealer<Task>>,
    live: AtomicUsize,
    sleepers: AtomicUsize,
    sleep_lock: Mutex<()>,
    wake: Condvar,
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
    tasks_executed: AtomicU64,
    spawns: AtomicU64,
    suspensions: AtomicU64,
    steals: AtomicU64,
}

/// Execution statistics of one [`Runtime::run_stats`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RunStats {
    /// Closures executed (root + spawned tasks + reactivated waiters).
    pub tasks_executed: u64,
    /// [`Worker::spawn`] calls.
    pub spawns: u64,
    /// Touches that found their cell unwritten and parked in it.
    pub suspensions: u64,
    /// Tasks obtained by stealing from a sibling worker.
    pub steals: u64,
}

impl Shared {
    fn notify_one(&self) {
        if self.sleepers.load(Ordering::SeqCst) > 0 {
            let _g = self.sleep_lock.lock();
            self.wake.notify_one();
        }
    }

    fn notify_all(&self) {
        let _g = self.sleep_lock.lock();
        self.wake.notify_all();
    }

    fn task_done(&self) {
        if self.live.fetch_sub(1, Ordering::AcqRel) == 1 {
            self.notify_all();
        }
    }
}

/// The per-thread execution context handed to every task.
pub struct Worker<'a> {
    shared: &'a Shared,
    local: Deque<Task>,
    index: usize,
    inline_depth: Cell<usize>,
    steal_seed: Cell<u64>,
}

impl<'a> Worker<'a> {
    /// Spawn `f` as a new task (a future fork). The paper charges this
    /// constant time: one allocation plus one deque push.
    pub fn spawn(&self, f: impl FnOnce(&Worker) + Send + 'static) {
        self.shared.live.fetch_add(1, Ordering::AcqRel);
        self.shared.spawns.fetch_add(1, Ordering::Relaxed);
        self.local.push(Box::new(f));
        self.shared.notify_one();
    }

    /// Enqueue a task whose liveness unit already exists (a reactivated
    /// waiter — its unit was added by [`Worker::note_suspend`]).
    pub(crate) fn enqueue_transferred(&self, t: Task) {
        self.local.push(t);
        self.shared.notify_one();
    }

    /// Account a continuation that is being suspended into a future cell.
    pub(crate) fn note_suspend(&self) {
        self.shared.live.fetch_add(1, Ordering::AcqRel);
        self.shared.suspensions.fetch_add(1, Ordering::Relaxed);
    }

    /// Undo [`Worker::note_suspend`] when the suspension raced a write and
    /// the continuation runs immediately after all.
    pub(crate) fn unnote_suspend(&self) {
        self.shared.live.fetch_sub(1, Ordering::AcqRel);
        self.shared.suspensions.fetch_sub(1, Ordering::Relaxed);
    }

    /// Run a ready continuation inline (bounded depth), or spawn it when
    /// the native stack is already deep.
    pub(crate) fn run_inline_or_spawn<T: Send + 'static>(
        &self,
        v: T,
        cont: impl FnOnce(T, &Worker) + Send + 'static,
    ) {
        let d = self.inline_depth.get();
        if d < MAX_INLINE_DEPTH {
            self.inline_depth.set(d + 1);
            cont(v, self);
            self.inline_depth.set(d);
        } else {
            self.spawn(move |wk| cont(v, wk));
        }
    }

    /// This worker's index (0-based).
    pub fn index(&self) -> usize {
        self.index
    }

    fn find_task(&self) -> Option<Task> {
        if let Some(t) = self.local.pop() {
            return Some(t);
        }
        // Injector, then siblings, starting from a pseudo-random victim.
        loop {
            match self.shared.injector.steal_batch_and_pop(&self.local) {
                crossbeam_deque::Steal::Success(t) => return Some(t),
                crossbeam_deque::Steal::Retry => continue,
                crossbeam_deque::Steal::Empty => break,
            }
        }
        let n = self.shared.stealers.len();
        let mut seed = self.steal_seed.get();
        seed = seed
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.steal_seed.set(seed);
        let start = (seed >> 33) as usize % n;
        for k in 0..n {
            let v = (start + k) % n;
            if v == self.index {
                continue;
            }
            loop {
                match self.shared.stealers[v].steal() {
                    crossbeam_deque::Steal::Success(t) => {
                        self.shared.steals.fetch_add(1, Ordering::Relaxed);
                        return Some(t);
                    }
                    crossbeam_deque::Steal::Retry => continue,
                    crossbeam_deque::Steal::Empty => break,
                }
            }
        }
        None
    }

    fn work_available(&self) -> bool {
        !self.local.is_empty()
            || !self.shared.injector.is_empty()
            || self
                .shared
                .stealers
                .iter()
                .enumerate()
                .any(|(i, s)| i != self.index && !s.is_empty())
    }

    fn run_loop(&self) {
        loop {
            if let Some(task) = self.find_task() {
                self.shared.tasks_executed.fetch_add(1, Ordering::Relaxed);
                let r = catch_unwind(AssertUnwindSafe(|| task(self)));
                if let Err(payload) = r {
                    // Record the panic and force quiescence so every worker
                    // exits; the payload is re-thrown by Runtime::run.
                    *self.shared.panic.lock() = Some(payload);
                    self.shared.live.store(0, Ordering::SeqCst);
                    self.shared.notify_all();
                    return;
                }
                self.shared.task_done();
                continue;
            }
            if self.shared.live.load(Ordering::Acquire) == 0 {
                return;
            }
            // Park (with a timeout backstop against lost wakeups).
            self.shared.sleepers.fetch_add(1, Ordering::SeqCst);
            if self.work_available() || self.shared.live.load(Ordering::SeqCst) == 0 {
                self.shared.sleepers.fetch_sub(1, Ordering::SeqCst);
                continue;
            }
            {
                let mut g = self.shared.sleep_lock.lock();
                self.shared.wake.wait_for(&mut g, Duration::from_millis(1));
            }
            self.shared.sleepers.fetch_sub(1, Ordering::SeqCst);
        }
    }
}

/// A futures runtime with a fixed number of worker threads. Threads are
/// created per [`Runtime::run`] call (scoped), so results written into
/// cells can be inspected as soon as `run` returns.
pub struct Runtime {
    nthreads: usize,
}

impl Runtime {
    /// A runtime with `nthreads` workers (≥ 1).
    pub fn new(nthreads: usize) -> Self {
        assert!(nthreads >= 1);
        Runtime { nthreads }
    }

    /// Number of worker threads.
    pub fn nthreads(&self) -> usize {
        self.nthreads
    }

    /// Execute `root` and every task it transitively spawns; returns when
    /// the computation is quiescent (every closure has run). Panics in
    /// tasks propagate.
    pub fn run(&self, root: impl FnOnce(&Worker) + Send + 'static) {
        let _ = self.run_stats(root);
    }

    /// [`Runtime::run`], returning execution statistics.
    pub fn run_stats(&self, root: impl FnOnce(&Worker) + Send + 'static) -> RunStats {
        let deques: Vec<Deque<Task>> = (0..self.nthreads).map(|_| Deque::new_lifo()).collect();
        let stealers = deques.iter().map(|d| d.stealer()).collect();
        let shared = Shared {
            injector: Injector::new(),
            stealers,
            live: AtomicUsize::new(1),
            sleepers: AtomicUsize::new(0),
            sleep_lock: Mutex::new(()),
            wake: Condvar::new(),
            panic: Mutex::new(None),
            tasks_executed: AtomicU64::new(0),
            spawns: AtomicU64::new(0),
            suspensions: AtomicU64::new(0),
            steals: AtomicU64::new(0),
        };
        shared.injector.push(Box::new(root));
        std::thread::scope(|scope| {
            for (i, local) in deques.into_iter().enumerate() {
                let shared = &shared;
                std::thread::Builder::new()
                    .name(format!("pf-rt-worker-{i}"))
                    .stack_size(WORKER_STACK)
                    .spawn_scoped(scope, move || {
                        let worker = Worker {
                            shared,
                            local,
                            index: i,
                            inline_depth: Cell::new(0),
                            steal_seed: Cell::new(0x9E3779B97F4A7C15 ^ (i as u64) << 7),
                        };
                        worker.run_loop();
                    })
                    .expect("failed to spawn worker");
            }
        });
        if let Some(payload) = shared.panic.lock().take() {
            resume_unwind(payload);
        }
        debug_assert_eq!(shared.live.load(Ordering::SeqCst), 0);
        RunStats {
            tasks_executed: shared.tasks_executed.load(Ordering::Relaxed),
            spawns: shared.spawns.load(Ordering::Relaxed),
            suspensions: shared.suspensions.load(Ordering::Relaxed),
            steals: shared.steals.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell;
    use std::sync::atomic::AtomicU64;
    use std::sync::Arc;

    #[test]
    fn runs_root_to_completion() {
        let (w, r) = cell::<u32>();
        Runtime::new(1).run(move |wk| w.fulfill(wk, 7));
        assert_eq!(r.expect(), 7);
    }

    #[test]
    fn spawns_fan_out() {
        let counter = Arc::new(AtomicU64::new(0));
        let c2 = Arc::clone(&counter);
        Runtime::new(4).run(move |wk| {
            for _ in 0..1000 {
                let c = Arc::clone(&c2);
                wk.spawn(move |_| {
                    c.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), 1000);
    }

    #[test]
    fn nested_spawns() {
        let counter = Arc::new(AtomicU64::new(0));
        let c2 = Arc::clone(&counter);
        fn rec(wk: &Worker, depth: usize, c: Arc<AtomicU64>) {
            c.fetch_add(1, Ordering::Relaxed);
            if depth > 0 {
                let (a, b) = (Arc::clone(&c), c);
                wk.spawn(move |wk| rec(wk, depth - 1, a));
                wk.spawn(move |wk| rec(wk, depth - 1, b));
            }
        }
        Runtime::new(4).run(move |wk| rec(wk, 10, c2));
        assert_eq!(counter.load(Ordering::Relaxed), (1 << 11) - 1);
    }

    #[test]
    fn single_thread_still_terminates() {
        let counter = Arc::new(AtomicU64::new(0));
        let c2 = Arc::clone(&counter);
        Runtime::new(1).run(move |wk| {
            fn rec(wk: &Worker, d: usize, c: Arc<AtomicU64>) {
                c.fetch_add(1, Ordering::Relaxed);
                if d > 0 {
                    wk.spawn(move |wk| rec(wk, d - 1, c));
                }
            }
            rec(wk, 5000, c2);
        });
        assert_eq!(counter.load(Ordering::Relaxed), 5001);
    }

    #[test]
    fn worker_indices_cover_pool() {
        let seen = Arc::new(Mutex::new(std::collections::BTreeSet::new()));
        let s2 = Arc::clone(&seen);
        Runtime::new(4).run(move |wk| {
            for _ in 0..4000 {
                let s = Arc::clone(&s2);
                wk.spawn(move |wk| {
                    s.lock().insert(wk.index());
                    std::thread::yield_now();
                });
            }
        });
        // With 4000 tiny tasks, stealing should engage several workers.
        assert!(seen.lock().len() >= 2, "stealing never happened");
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn task_panic_propagates() {
        Runtime::new(3).run(|wk| {
            wk.spawn(|_| panic!("boom"));
        });
    }

    #[test]
    fn run_stats_account_tasks_and_suspensions() {
        let (w, r) = cell::<u32>();
        let stats = Runtime::new(2).run_stats(move |wk| {
            // Suspend first, write later: exactly one suspension.
            r.touch(wk, |_, _| {});
            for _ in 0..10 {
                wk.spawn(|_| {});
            }
            wk.spawn(move |wk| w.fulfill(wk, 1));
        });
        assert_eq!(stats.spawns, 11);
        assert_eq!(stats.suspensions, 1);
        // root + 11 spawns + 1 reactivated waiter.
        assert_eq!(stats.tasks_executed, 13);
    }

    #[test]
    fn run_stats_zero_suspensions_when_ordered() {
        let (w, r) = cell::<u32>();
        let stats = Runtime::new(1).run_stats(move |wk| {
            w.fulfill(wk, 1);
            r.touch(wk, |_, _| {});
        });
        assert_eq!(stats.suspensions, 0);
        assert_eq!(stats.tasks_executed, 1);
        assert_eq!(stats.steals, 0, "single worker cannot steal");
    }

    #[test]
    fn repeated_runs_are_independent() {
        for i in 0..50 {
            let (w, r) = cell::<usize>();
            Runtime::new(3).run(move |wk| {
                wk.spawn(move |wk| w.fulfill(wk, i));
            });
            assert_eq!(r.expect(), i);
        }
    }
}
