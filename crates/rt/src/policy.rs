//! Pluggable scheduling policies.
//!
//! Every scheduling decision the runtime makes on a hot path — how much
//! to steal, whom to steal from, where a resumed continuation lands,
//! which side of a fork runs first — is an explicit knob here instead of
//! a hard-coded branch in `scheduler.rs`/`cell.rs`. The motivation is
//! Herlihy & Liu's *Well-Structured Futures and Cache Locality*: for
//! futures specifically, deviations (and with them cache misses) swing
//! by integer factors depending on steal granularity and resume
//! placement, so the policy must be measurable per run — which PR 7's
//! exact [`TraceStats`](pf_trace::TraceStats) counters make cheap.
//!
//! Dispatch is by enum compare, not trait object: a [`SchedPolicy`]
//! packs into a `u32` stored once per session in the pool's shared
//! state (`Relaxed` loads on the per-task path, no indirection, no
//! allocation). The policy may only change between sessions, while the
//! pool is quiescent — mid-session every worker observes one fixed
//! policy.
//!
//! [`SchedPolicy::default()`] is bit-for-bit the pre-policy runtime
//! (steal-one, random-sweep victims, resume onto the fulfiller's deque,
//! parent-first spawn); `bench_pr8` pins that the default's hot path
//! matches the PR 1/PR 7 baselines.

/// How many tasks one successful steal moves.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum StealKind {
    /// Take the single oldest task from the victim (the classic
    /// Chase–Lev steal; the default).
    #[default]
    One,
    /// Take up to half of the victim's observed queue — the first task
    /// is run, the rest land in the thief's own deque. Fewer steal
    /// *episodes* on deep queues (better amortization of the miss/retry
    /// sweep), at the cost of coarser load distribution.
    Half,
}

/// How a worker with an empty deque picks steal victims.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum VictimSelect {
    /// One full sweep over the siblings starting at a per-worker
    /// pseudo-random index (the default).
    #[default]
    RandomSweep,
    /// Try the last victim that yielded a task first, then fall back to
    /// the random sweep. Exploits temporal locality of imbalance: a
    /// deep victim stays deep for a while.
    LastVictimFirst,
}

/// Where a continuation resumed by a fulfill lands.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum ResumePlace {
    /// Push onto the fulfilling worker's own deque (the default): the
    /// resume is the *newest* task there and runs next under LIFO — the
    /// value it touches is hot in the fulfiller's cache.
    #[default]
    FulfillerDeque,
    /// Run the continuation inline, immediately, inside the fulfill
    /// itself (depth-guarded; falls back to [`Self::FulfillerDeque`]
    /// past the inline-depth limit). The LIFO-front extreme: zero queue
    /// traffic, but the fulfiller's own continuation waits.
    Inline,
    /// Hand the continuation back to the worker that *suspended* on the
    /// cell, through a per-worker mailbox, waking it if parked. The
    /// cache-locality bet of Herlihy & Liu: the suspended frame's
    /// working set lives in the owner's cache, not the fulfiller's.
    Mailbox,
}

/// Which side of a fork the spawning worker continues into.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum SpawnOrder {
    /// `spawn` pushes the child and the parent keeps running (the
    /// default; the paper's help-first discipline — the child is
    /// immediately stealable).
    #[default]
    ParentFirst,
    /// `spawn` runs the child inline and the parent continues after it
    /// returns (work-first, depth-guarded with fallback to the push
    /// path). `spawn2` keeps one stealable child: the first closure is
    /// pushed, the second runs inline.
    ChildFirst,
}

/// One complete scheduling policy: a value of each knob.
///
/// `Default` reproduces the pre-policy runtime exactly. Select per
/// runtime with [`Runtime::with_policy`](crate::Runtime::with_policy)
/// or the [builder](crate::Runtime::builder), or per session with
/// [`Session::policy`](crate::Session::policy) (which wins).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub struct SchedPolicy {
    /// Steal granularity.
    pub steal: StealKind,
    /// Victim selection.
    pub victim: VictimSelect,
    /// Resume placement on fulfill.
    pub resume: ResumePlace,
    /// Spawn order at a fork.
    pub spawn: SpawnOrder,
}

impl SchedPolicy {
    /// Pack into one `u32` (one byte per knob) for storage in an atomic.
    pub(crate) fn pack(self) -> u32 {
        let s = self.steal as u32;
        let v = self.victim as u32;
        let r = self.resume as u32;
        let o = self.spawn as u32;
        s | (v << 8) | (r << 16) | (o << 24)
    }

    /// Inverse of [`Self::pack`]. Unknown bytes fall back to the
    /// default knob value (cannot happen for values we packed).
    pub(crate) fn unpack(bits: u32) -> Self {
        SchedPolicy {
            steal: match bits & 0xff {
                1 => StealKind::Half,
                _ => StealKind::One,
            },
            victim: match (bits >> 8) & 0xff {
                1 => VictimSelect::LastVictimFirst,
                _ => VictimSelect::RandomSweep,
            },
            resume: match (bits >> 16) & 0xff {
                1 => ResumePlace::Inline,
                2 => ResumePlace::Mailbox,
                _ => ResumePlace::FulfillerDeque,
            },
            spawn: match (bits >> 24) & 0xff {
                1 => SpawnOrder::ChildFirst,
                _ => SpawnOrder::ParentFirst,
            },
        }
    }

    /// A short stable label (`steal-victim-resume-spawn`), used to tag
    /// traces and name benchmark metrics. The default policy's label is
    /// `"one-sweep-deque-parent"`.
    pub fn label(&self) -> String {
        let s = match self.steal {
            StealKind::One => "one",
            StealKind::Half => "half",
        };
        let v = match self.victim {
            VictimSelect::RandomSweep => "sweep",
            VictimSelect::LastVictimFirst => "lastv",
        };
        let r = match self.resume {
            ResumePlace::FulfillerDeque => "deque",
            ResumePlace::Inline => "inline",
            ResumePlace::Mailbox => "mailbox",
        };
        let o = match self.spawn {
            SpawnOrder::ParentFirst => "parent",
            SpawnOrder::ChildFirst => "child",
        };
        format!("{s}-{v}-{r}-{o}")
    }

    /// Every combination of every knob (2·2·3·2 = 24 policies), the
    /// default first. The cross-policy pinned tests iterate this so a
    /// new knob value is covered the day it is added.
    pub fn matrix() -> Vec<SchedPolicy> {
        let mut out = Vec::with_capacity(24);
        for &spawn in &[SpawnOrder::ParentFirst, SpawnOrder::ChildFirst] {
            for &resume in &[
                ResumePlace::FulfillerDeque,
                ResumePlace::Inline,
                ResumePlace::Mailbox,
            ] {
                for &victim in &[VictimSelect::RandomSweep, VictimSelect::LastVictimFirst] {
                    for &steal in &[StealKind::One, StealKind::Half] {
                        out.push(SchedPolicy {
                            steal,
                            victim,
                            resume,
                            spawn,
                        });
                    }
                }
            }
        }
        debug_assert_eq!(out[0], SchedPolicy::default());
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_legacy_behavior() {
        let p = SchedPolicy::default();
        assert_eq!(p.steal, StealKind::One);
        assert_eq!(p.victim, VictimSelect::RandomSweep);
        assert_eq!(p.resume, ResumePlace::FulfillerDeque);
        assert_eq!(p.spawn, SpawnOrder::ParentFirst);
        assert_eq!(p.label(), "one-sweep-deque-parent");
        // The default must pack to 0 so a zero-initialised atomic *is*
        // the default policy.
        assert_eq!(p.pack(), 0);
    }

    #[test]
    fn pack_roundtrips_every_matrix_entry() {
        let m = SchedPolicy::matrix();
        assert_eq!(m.len(), 24);
        for p in m {
            assert_eq!(SchedPolicy::unpack(p.pack()), p);
        }
    }

    #[test]
    fn labels_are_distinct() {
        let m = SchedPolicy::matrix();
        let mut labels: Vec<String> = m.iter().map(|p| p.label()).collect();
        labels.sort();
        labels.dedup();
        assert_eq!(labels.len(), 24);
    }
}
