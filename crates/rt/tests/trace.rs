//! Behavioral scheduler tests over the tracing layer (`--features trace`).
//!
//! Until this suite, tests could only assert *end-state* values (cells
//! hold the right numbers) and aggregate counters. `TraceStats` lets them
//! assert scheduler *behavior*: that a single-threaded session cannot
//! steal, that a fork-heavy session on a wide pool does, that
//! touch-before-fulfill produces matched suspend/resume pairs, and that
//! an aborted session poisons exactly the cells its `StallReport` names.
//! The reconciliation test at the bottom pins the trace counts to the
//! independent `WorkerStats` counters across 100 seeded random workloads.

#![cfg(feature = "trace")]

use pf_rt::{cell, Runtime, Session, SessionError, TraceKind};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn fork_tree(wk: &pf_rt::Worker, depth: usize) {
    if depth > 0 {
        wk.spawn2(
            move |wk| fork_tree(wk, depth - 1),
            move |wk| fork_tree(wk, depth - 1),
        );
    }
}

#[test]
fn single_worker_records_zero_steals() {
    let rt = Runtime::new(1);
    let stats = rt.run_stats(|wk| fork_tree(wk, 8));
    let trace = stats.trace.as_ref().expect("traced build attaches stats");
    assert_eq!(trace.steals(), 0, "a lone worker has nobody to steal from");
    assert_eq!(trace.steals(), stats.steals);
    assert_eq!(trace.per_worker.len(), 1);
    // Everything ran on worker 0.
    assert_eq!(trace.per_worker[0].executed(), stats.tasks_executed);
}

#[test]
fn fork_heavy_session_steals_on_a_wide_pool() {
    // Stealing is how tasks reach workers 1..4 at all (the injector only
    // ever holds the root), so a fan-out of thousands of yielding tasks
    // engages it reliably; the retry loop absorbs pathological schedules.
    let rt = Runtime::new(4);
    let mut last = 0;
    for _ in 0..20 {
        let stats = rt.run_stats(|wk| {
            for _ in 0..4000 {
                wk.spawn(|_| std::thread::yield_now());
            }
        });
        let trace = stats.trace.as_ref().unwrap();
        assert_eq!(trace.steals(), stats.steals, "trace and counter agree");
        last = trace.steals();
        if last > 0 {
            return;
        }
    }
    panic!("no steal in 20 fork-heavy sessions at t=4 (last trace: {last})");
}

#[test]
fn touch_before_fulfill_records_suspend_resume_pairs() {
    // One worker makes the order deterministic: the root touches every
    // cell before any fulfiller task runs, so each of the N touches
    // suspends and each write resumes exactly one waiter.
    const N: usize = 25;
    let rt = Runtime::new(1);
    let stats = rt.run_stats(|wk| {
        for i in 0..N {
            let (w, r) = cell::<usize>();
            r.touch(wk, move |v, _| assert_eq!(v, i));
            wk.spawn(move |wk| w.fulfill(wk, i));
        }
    });
    let trace = stats.trace.as_ref().unwrap();
    assert_eq!(trace.suspends(), N as u64);
    assert_eq!(trace.resumes(), N as u64, "every suspension was resumed");
    assert_eq!(trace.suspends(), stats.suspensions);
    assert_eq!(trace.total(TraceKind::Fulfill), N as u64);
    assert_eq!(trace.poisons(), 0, "healthy session poisons nothing");
}

#[test]
fn write_before_touch_records_no_suspension() {
    let rt = Runtime::new(1);
    let stats = rt.run_stats(|wk| {
        let (w, r) = cell::<u32>();
        w.fulfill(wk, 7);
        r.touch(wk, |v, _| assert_eq!(v, 7));
    });
    let trace = stats.trace.as_ref().unwrap();
    assert_eq!(trace.suspends(), 0);
    assert_eq!(trace.resumes(), 0);
    assert_eq!(trace.total(TraceKind::Fulfill), 1);
}

#[test]
fn stalled_session_records_poison_per_stuck_cell() {
    // Three touches of cells nobody will ever write wedge the session;
    // the watchdog aborts it and the cleanup must poison exactly the
    // cells the StallReport names — with one client-lane Poison event
    // (carrying the cell address) for each.
    let rt = Runtime::new(2);
    let err = rt
        .try_run_session(Session::new(), |wk| {
            for _ in 0..3 {
                let (w, r) = cell::<u32>();
                r.touch(wk, |_, _| {});
                std::mem::forget(w); // never fulfilled, never dropped early
            }
        })
        .expect_err("a never-written touch must stall the session");
    let report = match err {
        SessionError::Stalled { report, .. } => report,
        other => panic!("expected Stalled, got {other}"),
    };
    assert_eq!(report.stuck.len(), 3);
    let trace = rt
        .take_last_trace()
        .expect("aborted sessions leave their timeline behind");
    let stats = trace.stats();
    assert_eq!(
        stats.poisons(),
        report.stuck.len() as u64,
        "one poison event per stuck cell"
    );
    // The poison events carry the stuck cells' addresses.
    let mut traced: Vec<u64> = trace
        .client
        .events
        .iter()
        .filter(|e| e.kind == TraceKind::Poison)
        .map(|e| e.arg)
        .collect();
    let mut reported: Vec<u64> = report.stuck.iter().map(|c| c.addr as u64).collect();
    traced.sort_unstable();
    reported.sort_unstable();
    assert_eq!(traced, reported);
    assert_eq!(stats.suspends(), 3, "the suspensions that wedged the pool");
}

#[test]
fn timeline_is_exported_and_consumed_once() {
    let rt = Runtime::new(2);
    let stats = rt.run_stats(|wk| {
        let (w, r) = cell::<u32>();
        r.touch(wk, |_, _| {});
        wk.spawn(move |wk| w.fulfill(wk, 1));
    });
    let trace = rt.take_last_trace().expect("timeline available");
    assert_eq!(trace.session, stats.trace.as_ref().unwrap().session);
    assert!(trace.events() > 0);
    let json = trace.to_chrome_trace();
    assert!(json.contains("\"name\":\"exec\""));
    assert!(json.contains("\"name\":\"suspend\""));
    assert!(rt.take_last_trace().is_none(), "take consumes");
}

#[test]
fn accumulate_merges_trace_summaries() {
    let rt = Runtime::new(2);
    let mut total = pf_rt::RunStats::default();
    for _ in 0..3 {
        total.accumulate(&rt.run_stats(|wk| fork_tree(wk, 6)));
    }
    let trace = total.trace.as_ref().expect("merge keeps the summary");
    assert_eq!(trace.executed(), total.tasks_executed);
    assert_eq!(trace.spawns(), total.spawns);
}

/// Satellite 4: across 100 seeded random workloads (mixed fan-out,
/// cells touched and fulfilled in random order, random pool widths),
/// the per-worker trace counts must reconcile exactly with the
/// independently-maintained `WorkerStats` counters aggregated in
/// `RunStats` — executed, spawns, suspensions, and steals alike.
#[test]
fn trace_counts_reconcile_with_run_stats_over_seeded_workloads() {
    let mut rng = SmallRng::seed_from_u64(0x7ACE_5EED);
    for iter in 0..100 {
        let threads = rng.gen_range(1..5usize);
        let plain: usize = rng.gen_range(0..120);
        let cells: usize = rng.gen_range(0..24);
        let touch_first: bool = rng.gen();
        let rt = Runtime::shared(threads);
        let stats = rt.run_stats(move |wk| {
            for _ in 0..plain {
                wk.spawn(|_| {});
            }
            for i in 0..cells {
                let (w, r) = cell::<usize>();
                if touch_first {
                    r.touch(wk, move |v, _| assert_eq!(v, i));
                    wk.spawn(move |wk| w.fulfill(wk, i));
                } else {
                    wk.spawn(move |wk| w.fulfill(wk, i));
                    wk.spawn(move |wk| r.touch(wk, move |v, _| assert_eq!(v, i)));
                }
            }
        });
        let trace = stats.trace.as_ref().expect("traced build");
        let executed: u64 = trace.per_worker.iter().map(|w| w.executed()).sum();
        assert_eq!(
            executed, stats.tasks_executed,
            "iter {iter}: per-worker exec events vs RunStats.tasks_executed"
        );
        assert_eq!(trace.spawns(), stats.spawns, "iter {iter}: spawns");
        assert_eq!(
            trace.suspends(),
            stats.suspensions,
            "iter {iter}: committed suspensions (raced touches un-note)"
        );
        assert_eq!(trace.steals(), stats.steals, "iter {iter}: steals");
        assert_eq!(
            trace.resumes(),
            trace.suspends(),
            "iter {iter}: every suspension in a finished session resumed"
        );
        assert_eq!(trace.dropped(), 0, "iter {iter}: workloads fit the ring");
    }
}
