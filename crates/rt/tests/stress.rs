//! Randomized stress tests for the runtime: random dataflow DAGs executed
//! across worker counts, with racing producers/consumers and diamond
//! dependencies, validated against sequentially computed expectations.
//!
//! These run on real threads and real time, so they cover scheduling
//! noise a model checker cannot (preemption mid-instruction, cache
//! effects). Deterministic interleaving coverage is `pf-check`'s job: see
//! `crates/check` and the model suite in `crates/check/tests/model_rt.rs`.

use pf_rt::{cell, FutRead, Runtime, Worker};
use proptest::prelude::*;
use proptest::TestRng;

/// A half-open cell pair: the write side is taken (`Option`) when a task
/// claims it.
type CellPair = (Option<pf_rt::FutWrite<u64>>, FutRead<u64>);

/// The random dataflow shape shared by the expected-value computation and
/// the runtime execution: `plan[l - 1][i]` lists the source indices in
/// layer `l - 1` that cell `i` of layer `l` sums (1–3 of them). Derived
/// from proptest's own generator so the per-case `seed` drawn by the
/// `proptest!` strategy is the single source of randomness.
fn build_plan(seed: u64, width: usize, layers: usize) -> Vec<Vec<Vec<usize>>> {
    let mut rng = TestRng::from_seed(seed);
    (1..layers)
        .map(|_| {
            (0..width)
                .map(|_| {
                    let k = (rng.next_u64() % 3 + 1) as usize;
                    (0..k).map(|_| rng.next_u64() as usize % width).collect()
                })
                .collect()
        })
        .collect()
}

/// Layer-0 values for a given seed.
fn layer0(seed: u64, width: usize) -> Vec<u64> {
    (0..width as u64).map(|i| i + seed % 97).collect()
}

/// Sequentially compute every layer's expected sums for the plan.
fn layered_expected(seed: u64, width: usize, layers: usize) -> Vec<Vec<u64>> {
    let plan = build_plan(seed, width, layers);
    let mut vals = vec![layer0(seed, width)];
    for l in 1..layers {
        let row = (0..width)
            .map(|i| {
                plan[l - 1][i]
                    .iter()
                    .fold(0u64, |acc, &s| acc.wrapping_add(vals[l - 1][s]))
            })
            .collect();
        vals.push(row);
    }
    vals
}

fn run_layered(seed: u64, width: usize, layers: usize, threads: usize) -> Vec<u64> {
    // Same plan as layered_expected, but executed as a cell DAG.
    let plan = build_plan(seed, width, layers);
    let mut cells: Vec<Vec<CellPair>> = (0..layers)
        .map(|_| {
            (0..width)
                .map(|_| {
                    let (w, r) = cell();
                    (Some(w), r)
                })
                .collect()
        })
        .collect();

    // Every consumer must touch each source cell at most once (linearity);
    // but several consumers may share a source, so give each consumer its
    // own clone of the read handle — the dynamic check is per-touch on the
    // same handle chain, and the mutex-free cell allows only ONE waiter.
    // To stay linear we route each layer through combining tasks that
    // touch each produced cell exactly once and distribute values by
    // plain memory: a relay task per cell fans its value out to the
    // (precomputed) consumers via dedicated cells.
    let mut relay: Vec<Vec<Vec<CellPair>>> = Vec::new();
    for l in 1..layers {
        // fanout[src] = list of (consumer cell) for value of (l-1, src).
        let mut per_src: Vec<Vec<CellPair>> = (0..width).map(|_| Vec::new()).collect();
        for srcs in &plan[l - 1] {
            for &s in srcs {
                let (w, r) = cell();
                per_src[s].push((Some(w), r));
            }
        }
        relay.push(per_src);
    }

    let out_reads: Vec<FutRead<u64>> = cells[layers - 1].iter().map(|c| c.1.clone()).collect();

    // Collect the moves for the runtime closure.
    let layer0_writes: Vec<pf_rt::FutWrite<u64>> = cells[0]
        .iter_mut()
        .map(|c| c.0.take().expect("unwritten"))
        .collect();
    let mut later_writes: Vec<Vec<pf_rt::FutWrite<u64>>> = Vec::new();
    for row in cells.iter_mut().skip(1) {
        later_writes.push(row.iter_mut().map(|c| c.0.take().expect("w")).collect());
    }
    let layer_reads: Vec<Vec<FutRead<u64>>> = cells
        .iter()
        .map(|row| row.iter().map(|c| c.1.clone()).collect())
        .collect();

    Runtime::new(threads).run(move |wk: &Worker| {
        // Relay tasks: touch each produced cell once, fan out.
        for (l, per_src) in relay.iter_mut().enumerate() {
            for (src, consumers) in per_src.iter_mut().enumerate() {
                let reads = layer_reads[l][src].clone();
                let writes: Vec<pf_rt::FutWrite<u64>> = consumers
                    .iter_mut()
                    .map(|c| c.0.take().expect("w"))
                    .collect();
                wk.spawn(move |wk| {
                    reads.touch(wk, move |v, wk| {
                        for w in writes {
                            w.fulfill(wk, v);
                        }
                    });
                });
            }
        }
        // Consumer tasks: sum their relay cells.
        for (l, rows) in later_writes.into_iter().enumerate() {
            // Walk the relay row in the same order it was built.
            let mut idx = vec![0usize; width];
            for (i, out_w) in rows.into_iter().enumerate() {
                let srcs = &plan[l][i];
                let my_reads: Vec<FutRead<u64>> = srcs
                    .iter()
                    .map(|&s| {
                        let r = relay[l][s][idx[s]].1.clone();
                        idx[s] += 1;
                        r
                    })
                    .collect();
                wk.spawn(move |wk| {
                    fn sum_rec(
                        wk: &Worker,
                        mut reads: Vec<FutRead<u64>>,
                        acc: u64,
                        out: pf_rt::FutWrite<u64>,
                    ) {
                        match reads.pop() {
                            None => out.fulfill(wk, acc),
                            Some(r) => r.touch(wk, move |v, wk| {
                                sum_rec(wk, reads, acc.wrapping_add(v), out)
                            }),
                        }
                    }
                    sum_rec(wk, my_reads, 0, out_w);
                });
            }
        }
        // Producers last: maximize racing against already-suspended
        // consumers.
        for (w, v) in layer0_writes.into_iter().zip(layer0(seed, width)) {
            wk.spawn(move |wk| w.fulfill(wk, v));
        }
    });

    out_reads.iter().map(|r| r.expect()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn random_dataflow_dags(seed in 0u64..1_000, width in 2usize..8, layers in 2usize..5, threads in 1usize..5) {
        let expect = layered_expected(seed, width, layers);
        let got = run_layered(seed, width, layers, threads);
        prop_assert_eq!(got, expect[layers - 1].clone());
    }
}

#[test]
fn repeated_runs_many_threads() {
    for round in 0..30 {
        let expect = layered_expected(round, 6, 4);
        let got = run_layered(round, 6, 4, 4);
        assert_eq!(got, expect[3], "round {round}");
    }
}

#[test]
fn persistent_pool_150_sessions_with_races() {
    // One persistent Runtime across 150 consecutive `run` calls, each with
    // producers racing already-suspended consumers. Checks, per session:
    //   * the results of THIS run only (cross-run task leakage would
    //     corrupt sums or crash a consumed-write invariant);
    //   * that per-run stats were reset (counts match this run's shape,
    //     not an accumulation over the pool's lifetime).
    let rt = Runtime::new(4);
    for round in 0u64..150 {
        let n = 32 + (round as usize % 17);
        let pairs: Vec<_> = (0..n).map(|_| cell::<u64>()).collect();
        let (writes, reads): (Vec<_>, Vec<_>) = pairs.into_iter().unzip();
        let outs: Vec<_> = (0..n).map(|_| cell::<u64>()).collect();
        let (out_w, out_r): (Vec<_>, Vec<_>) = outs.into_iter().unzip();
        let stats = rt.run_stats(move |wk| {
            // Consumers first: most will suspend, producers reactivate
            // them from racing workers.
            for (r, ow) in reads.into_iter().zip(out_w) {
                wk.spawn(move |wk| {
                    r.touch(wk, move |v, wk| ow.fulfill(wk, v.wrapping_mul(3)));
                });
            }
            for (i, w) in writes.into_iter().enumerate() {
                wk.spawn(move |wk| w.fulfill(wk, round.wrapping_add(i as u64)));
            }
        });
        for (i, o) in out_r.iter().enumerate() {
            assert_eq!(
                o.expect(),
                round.wrapping_add(i as u64).wrapping_mul(3),
                "round {round}, cell {i}"
            );
        }
        // Stats are per-session: exactly this round's 2n spawns, and at
        // most one suspension per consumer. Any carry-over from earlier
        // rounds (or leaked tasks executing late) would break these.
        assert_eq!(stats.spawns, 2 * n as u64, "round {round}: stats not reset");
        assert!(
            stats.suspensions <= n as u64,
            "round {round}: impossible suspension count {}",
            stats.suspensions
        );
        // root + spawned tasks + one reactivation per actual suspension.
        assert_eq!(
            stats.tasks_executed,
            1 + 2 * n as u64 + stats.suspensions,
            "round {round}: task count shows cross-run leakage"
        );
    }
}

#[test]
fn deep_chain_of_suspensions() {
    // A 10_000-long dependency chain where every consumer registers before
    // its producer fires: exercises the WAITING path massively.
    let n = 10_000usize;
    let cells: Vec<_> = (0..=n).map(|_| cell::<u64>()).collect();
    let (mut writes, reads): (Vec<_>, Vec<_>) = cells.into_iter().unzip();
    let first = writes.remove(0);
    let last_read = reads[n].clone();
    Runtime::new(2).run(move |wk| {
        // Chain: cell[i] + 1 -> cell[i+1]; register all consumers first.
        for (i, w) in writes.into_iter().enumerate() {
            let r = reads[i].clone();
            wk.spawn(move |wk| {
                r.touch(wk, move |v, wk| w.fulfill(wk, v + 1));
            });
        }
        first.fulfill(wk, 0);
    });
    assert_eq!(last_read.expect(), n as u64);
}
