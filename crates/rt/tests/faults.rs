//! Fault-containment integration tests: recovered aborts leave the pool
//! reusable, leak no suspended continuations (drop-counted), poison the
//! dead session's cells with originating context, and the deadline /
//! cancel / watchdog paths all surface as `Err` instead of a hang.
//!
//! These run on the real clock and real threads; the schedule-exhaustive
//! versions of the abort protocol live in `pf-check`'s model tests.

#![cfg(not(pf_check))]

use std::sync::Arc;
use std::time::Duration;

use pf_rt::{cell, CancelToken, Runtime, Session, SessionError};

#[test]
fn recovered_abort_drops_suspended_continuations() {
    let rt = Runtime::new(3);
    // Drop-counting probe: the only clone lives inside the suspended
    // continuation, so the strong count tells us whether the abort path
    // dropped it or leaked it.
    let probe = Arc::new(());
    let held = Arc::clone(&probe);
    let (_w, r) = cell::<u32>(); // write half kept alive, never fulfilled
    let r_in = r.clone();
    let err = rt
        .try_run(move |wk| {
            // Program order: the continuation suspends in the cell before
            // the panicking task is even spawned — deterministic.
            r_in.touch(wk, move |_v, _wk| {
                let _keep = held;
            });
            wk.spawn(|_| panic!("boom"));
        })
        .unwrap_err();
    assert!(matches!(err, SessionError::Panicked { .. }), "{err}");
    assert_eq!(err.panic_message(), Some("boom"));
    assert_eq!(
        Arc::strong_count(&probe),
        1,
        "suspended continuation leaked past the abort rendezvous"
    );

    // The cell carries the originating session's poison context…
    let info = r.poison_info().expect("cell should be poisoned");
    assert_eq!(info.session, err.session());
    assert!(info.reason.contains("boom"), "{}", info.reason);
    assert!(r.peek().is_none());

    // …and a straggler touch in a later session fails fast with it.
    let r_late = r.clone();
    let err2 = rt
        .try_run(move |wk| r_late.touch(wk, |_v, _wk| {}))
        .unwrap_err();
    assert!(err2.to_string().contains("poisoned"), "{err2}");

    // Same pool completes a clean run afterwards.
    let (w, out) = cell::<u32>();
    rt.try_run(move |wk| w.fulfill(wk, 41)).unwrap();
    assert_eq!(out.expect(), 41);
}

#[test]
fn cancel_token_aborts_a_running_session() {
    let rt = Runtime::new(2);
    let tok = CancelToken::new();
    let t2 = tok.clone();
    let canceller = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(10));
        t2.cancel();
    });
    let err = rt
        .try_run_session(Session::new().cancel_token(&tok), move |wk| {
            wk.spawn(|wk| {
                while !wk.cancelled() {
                    std::hint::spin_loop();
                }
            });
        })
        .unwrap_err();
    canceller.join().unwrap();
    assert!(matches!(err, SessionError::Cancelled { .. }), "{err}");
    assert!(tok.is_cancelled());
    rt.try_run(|_wk| {}).unwrap();
}

#[test]
fn pre_cancelled_token_fails_the_session_immediately() {
    let rt = Runtime::new(2);
    let tok = CancelToken::new();
    tok.cancel();
    let err = rt
        .try_run_session(Session::new().cancel_token(&tok), |_wk| {})
        .unwrap_err();
    assert!(matches!(err, SessionError::Cancelled { .. }), "{err}");
    rt.try_run(|_wk| {}).unwrap();
}

#[test]
fn deadline_expiry_returns_deadline_exceeded() {
    let rt = Runtime::new(2);
    let err = rt
        .try_run_session(
            Session::new().deadline(Duration::from_millis(20)),
            move |wk| {
                wk.spawn(|wk| {
                    while !wk.cancelled() {
                        std::hint::spin_loop();
                    }
                });
            },
        )
        .unwrap_err();
    match err {
        SessionError::DeadlineExceeded { deadline, .. } => {
            assert_eq!(deadline, Duration::from_millis(20));
        }
        other => panic!("expected DeadlineExceeded, got {other}"),
    }
    rt.try_run(|_wk| {}).unwrap();
}

#[test]
fn watchdog_reports_a_stalled_session_with_the_stuck_cell() {
    let rt = Runtime::new(2);
    let (_w, r) = cell::<u32>(); // write half kept alive, never fulfilled
    let err = rt.try_run(move |wk| r.touch(wk, |_v, _wk| {})).unwrap_err();
    match &err {
        SessionError::Stalled { report, .. } => {
            assert!(report.live >= 1, "{report:?}");
            assert_eq!(report.stuck.len(), 1, "{report:?}");
            assert_eq!(report.stuck[0].kind, "cell");
            assert!(report.stuck[0].payload_type.contains("u32"));
            // Freeze provenance: the report names its session and how
            // long progress was frozen (several consecutive samples).
            assert_eq!(report.session, err.session(), "{report:?}");
            assert!(report.frozen >= 2, "{report:?}");
            assert!(report.frozen_for > Duration::ZERO, "{report:?}");
        }
        other => panic!("expected Stalled, got {other}"),
    }
    assert!(err.to_string().contains("stalled"), "{err}");
    rt.try_run(|_wk| {}).unwrap();
}

/// 500 seeded iterations mixing clean and faulty sessions on the
/// process-global pool: `try_run` must return `Err` exactly for the
/// faulty ones and the pool must keep serving throughout.
#[test]
fn global_pool_survives_repeated_faults() {
    // Silence the ~170 expected panic messages; everything else (e.g. a
    // real assert failure in a concurrent test) still reaches the default
    // hook.
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let expected = info
            .payload()
            .downcast_ref::<&str>()
            .is_some_and(|m| *m == "iteration fault");
        if !expected {
            prev(info);
        }
    }));
    // Deterministic LCG so the pass/fail pattern is reproducible.
    let mut s: u64 = 0x9e3779b97f4a7c15;
    let mut lcg = move || {
        s = s
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        s >> 33
    };
    let rt = Runtime::global();
    let mut failures = 0usize;
    for i in 0..500u64 {
        let faulty = lcg() % 3 == 0;
        let (w, out) = cell::<u64>();
        let res = rt.try_run(move |wk| {
            if faulty {
                wk.spawn(|_| panic!("iteration fault"));
            }
            wk.spawn(move |wk| w.fulfill(wk, i));
        });
        assert_eq!(res.is_err(), faulty, "iteration {i}");
        if res.is_err() {
            failures += 1;
        } else {
            assert_eq!(out.expect(), i);
        }
    }
    assert!(failures > 100, "seeded mix should include many faults");
    // One last clean run proves the pool is still healthy.
    let (w, out) = cell::<u64>();
    rt.try_run(move |wk| w.fulfill(wk, 7)).unwrap();
    assert_eq!(out.expect(), 7);
}
