//! Concurrent-session integration tests: N `try_run_session` callers
//! co-execute on one shared worker pool, each with its own slot in the
//! session table. These pin the PR-9 acceptance claims on real threads:
//! a short session completes while a long sibling is still executing;
//! faults (panic, cancel, deadline) abort only their own session; poison
//! stays in the faulting session's cells; and per-session statistics
//! never bleed across slots. The schedule-exhaustive versions live in
//! `pf-check`'s `model_rt.rs`.

#![cfg(not(pf_check))]

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use pf_rt::{cell, CancelToken, Runtime, Session, SessionError};

/// The tentpole claim, literally: a short session submitted while a
/// long session is mid-flight returns `Ok` while the long sibling is
/// still executing — sessions co-execute, they do not queue behind one
/// another.
#[test]
fn short_session_completes_while_long_sibling_runs() {
    let rt = Arc::new(Runtime::new(2));
    let started = Arc::new(AtomicBool::new(false));
    let release = Arc::new(AtomicBool::new(false));
    let long_done = Arc::new(AtomicBool::new(false));

    let long = {
        let (rt, started, release, long_done) = (
            Arc::clone(&rt),
            Arc::clone(&started),
            Arc::clone(&release),
            Arc::clone(&long_done),
        );
        std::thread::spawn(move || {
            let res = rt.try_run(move |_wk| {
                started.store(true, Ordering::Release);
                // Occupy one worker until the short sibling has finished.
                while !release.load(Ordering::Acquire) {
                    std::hint::spin_loop();
                }
            });
            long_done.store(true, Ordering::Release);
            res
        })
    };

    // Wait until the long session's root is actually executing.
    while !started.load(Ordering::Acquire) {
        std::hint::spin_loop();
    }

    // The short session: a real suspend/fulfill chain, run to Ok while
    // the long session still holds a worker.
    let (w, r) = cell::<u64>();
    let (ow, or) = cell::<u64>();
    rt.try_run(move |wk| {
        wk.spawn(move |wk| r.touch(wk, move |v, wk| ow.fulfill(wk, v * 2)));
        wk.spawn(move |wk| w.fulfill(wk, 21));
    })
    .expect("short session must complete while the long sibling runs");
    assert_eq!(or.expect(), 42);

    // Ok came back while the sibling was still in flight.
    assert!(
        !long_done.load(Ordering::Acquire),
        "long session finished first: sessions did not co-execute"
    );
    release.store(true, Ordering::Release);
    long.join()
        .unwrap()
        .expect("long session must complete after release");
}

/// Deterministic pipeline for the identity check below: a chain of
/// suspend/fulfill stages whose result depends on every stage running
/// exactly once with the right value.
fn chained(rt: &Runtime, depth: u64, seed: u64) -> Result<u64, SessionError> {
    let (w0, mut prev) = cell::<u64>();
    let last = {
        let mut stages = Vec::new();
        for i in 0..depth {
            let (w, r) = cell::<u64>();
            let src = prev.clone();
            stages.push(move |wk: &pf_rt::Worker| {
                src.touch(wk, move |v, wk| {
                    w.fulfill(wk, v.wrapping_mul(3).wrapping_add(i))
                });
            });
            prev = r;
        }
        let last = prev.clone();
        rt.try_run(move |wk| {
            for st in stages {
                wk.spawn(st);
            }
            w0.fulfill(wk, seed);
        })?;
        last
    };
    Ok(last.expect())
}

/// A panicking sibling leaves a concurrent session's result bit-identical
/// to its solo run: fault containment is semantic, not just "no crash".
#[test]
fn panicking_sibling_leaves_result_bit_identical() {
    let rt = Arc::new(Runtime::new(3));
    // Solo baseline on the same pool.
    let solo = chained(&rt, 32, 0xDEAD).expect("solo run");

    for round in 0..20u64 {
        let rt2 = Arc::clone(&rt);
        let pill = std::thread::spawn(move || {
            let (_w, r) = cell::<u32>(); // never written: suspends, then poisoned
            let r_in = r.clone();
            let err = rt2
                .try_run(move |wk| {
                    // Program order: the suspension commits in the root
                    // body before the pill is even spawned, so the abort
                    // always finds a registered cell to poison.
                    r_in.touch(wk, |_v, _wk| {});
                    for _ in 0..16 {
                        wk.spawn(|_| std::hint::black_box(()));
                    }
                    wk.spawn(|_| panic!("pill"));
                })
                .unwrap_err();
            assert_eq!(err.panic_message(), Some("pill"), "round {round}");
            // Poison landed in the pill session's own cell…
            let info = r.poison_info().expect("pill cell must be poisoned");
            assert_eq!(info.session, err.session());
        });
        let v = chained(&rt, 32, 0xDEAD).expect("sibling of a panicking session");
        assert_eq!(v, solo, "round {round}: result diverged from solo run");
        pill.join().unwrap();
    }
}

/// Many concurrent sessions on one pool: every session's results and
/// per-session statistics are exact — stats accumulate into the
/// session's own slot, so concurrent siblings never inflate each
/// other's counters.
#[test]
fn many_concurrent_sessions_keep_stats_isolated() {
    let rt = Arc::new(Runtime::new(4));
    let clients: Vec<_> = (0..6u64)
        .map(|t| {
            let rt = Arc::clone(&rt);
            std::thread::spawn(move || {
                for round in 0..15u64 {
                    let n = 4 + (t as usize % 3);
                    let pairs: Vec<_> = (0..n).map(|_| cell::<u64>()).collect();
                    let (writes, reads): (Vec<_>, Vec<_>) = pairs.into_iter().unzip();
                    let outs: Vec<_> = (0..n).map(|_| cell::<u64>()).collect();
                    let (out_w, out_r): (Vec<_>, Vec<_>) = outs.into_iter().unzip();
                    let tag = t * 1_000_000 + round * 1_000;
                    let stats = rt
                        .try_run(move |wk| {
                            for (r, ow) in reads.into_iter().zip(out_w) {
                                wk.spawn(move |wk| {
                                    r.touch(wk, move |v, wk| ow.fulfill(wk, v ^ 1));
                                });
                            }
                            for (i, w) in writes.into_iter().enumerate() {
                                wk.spawn(move |wk| w.fulfill(wk, tag + i as u64));
                            }
                        })
                        .expect("healthy session");
                    for (i, o) in out_r.iter().enumerate() {
                        assert_eq!(o.expect(), (tag + i as u64) ^ 1, "client {t} round {round}");
                    }
                    assert_eq!(stats.spawns, 2 * n as u64, "client {t} round {round}");
                    assert!(stats.suspensions <= n as u64, "client {t} round {round}");
                    assert_eq!(
                        stats.tasks_executed,
                        1 + stats.spawns + stats.suspensions,
                        "client {t} round {round}: cross-session stat leakage"
                    );
                }
            })
        })
        .collect();
    for c in clients {
        c.join().expect("client thread panicked");
    }
}

/// A cancel token aborts exactly its own session; a sibling sharing the
/// pool completes, and re-cancelling the finished session is a no-op.
#[test]
fn cancel_aborts_only_its_session() {
    let rt = Arc::new(Runtime::new(2));
    let tok = CancelToken::new();

    let victim = {
        let (rt, tok) = (Arc::clone(&rt), tok.clone());
        std::thread::spawn(move || {
            rt.try_run_session(Session::new().cancel_token(&tok), |wk| {
                wk.spawn(|wk| {
                    while !wk.cancelled() {
                        std::hint::spin_loop();
                    }
                });
            })
        })
    };

    // Sibling completes while the victim spins toward its cancel.
    let (w, r) = cell::<u32>();
    rt.try_run(move |wk| {
        wk.spawn(move |wk| w.fulfill(wk, 5));
    })
    .expect("sibling of a cancelled session");
    assert_eq!(r.expect(), 5);

    tok.cancel();
    let err = victim.join().unwrap().unwrap_err();
    assert!(matches!(err, SessionError::Cancelled { .. }), "{err}");

    // Stale cancel: the slot is closed; cancelling again must not
    // disturb the pool or any later session.
    tok.cancel();
    let (w, r) = cell::<u32>();
    rt.try_run(move |wk| {
        wk.spawn(move |wk| w.fulfill(wk, 6));
    })
    .expect("session after a stale cancel");
    assert_eq!(r.expect(), 6);
}

/// A deadline fires only for the session that set it.
#[test]
fn deadline_aborts_only_its_session() {
    let rt = Arc::new(Runtime::new(2));
    let doomed = {
        let rt = Arc::clone(&rt);
        std::thread::spawn(move || {
            rt.try_run_session(Session::new().deadline(Duration::from_millis(50)), |wk| {
                wk.spawn(|wk| {
                    while !wk.cancelled() {
                        std::hint::spin_loop();
                    }
                });
            })
        })
    };
    // A slower, deadline-free sibling: must be untouched by the
    // sibling's deadline abort happening mid-flight.
    let mut acc = 0u64;
    for i in 0..40u64 {
        let (w, r) = cell::<u64>();
        rt.try_run(move |wk| {
            wk.spawn(move |wk| w.fulfill(wk, i));
        })
        .expect("deadline-free sibling");
        acc += r.expect();
        std::thread::sleep(Duration::from_millis(2));
    }
    assert_eq!(acc, (0..40).sum::<u64>());
    let err = doomed.join().unwrap().unwrap_err();
    assert!(
        matches!(err, SessionError::DeadlineExceeded { .. }),
        "{err}"
    );
}

/// Poison confinement: session A panics with a continuation suspended in
/// its cell; session B, concurrently suspended in a *different* cell,
/// completes — and only A's cell ends up poisoned.
#[test]
fn poison_stays_in_the_faulting_session() {
    let rt = Arc::new(Runtime::new(3));
    for round in 0..10 {
        let (_wa, ra) = cell::<u32>(); // A's cell: never written
        let ra_probe = ra.clone();

        let (rt2, ra_in) = (Arc::clone(&rt), ra.clone());
        let faulty = std::thread::spawn(move || {
            rt2.try_run(move |wk| {
                ra_in.touch(wk, |_v, _wk| {});
                wk.spawn(|_| panic!("fault in A"));
            })
            .unwrap_err()
        });

        // B: suspend then fulfill in its own cells, concurrently.
        let (wb, rb) = cell::<u32>();
        let (owb, orb) = cell::<u32>();
        rt.try_run(move |wk| {
            rb.touch(wk, move |v, wk| owb.fulfill(wk, v + 100));
            wk.spawn(move |wk| wb.fulfill(wk, round));
        })
        .expect("session B alongside faulting A");
        assert_eq!(orb.expect(), round + 100);

        let err = faulty.join().unwrap();
        let info = ra_probe.poison_info().expect("A's cell must be poisoned");
        assert_eq!(info.session, err.session(), "round {round}");
    }
}

/// Spawn a sibling thread that pumps short busy sessions on `rt` until
/// `stop` is raised, counting completed sessions in `pumped`. Each task
/// spins briefly so the pool's workers stay genuinely busy — the
/// condition under which the old idle-pool watchdog was blind.
fn busy_sibling(
    rt: &Arc<Runtime>,
    stop: &Arc<AtomicBool>,
    pumped: &Arc<std::sync::atomic::AtomicU64>,
) -> std::thread::JoinHandle<()> {
    let (rt, stop, pumped) = (Arc::clone(rt), Arc::clone(stop), Arc::clone(pumped));
    std::thread::spawn(move || {
        while !stop.load(Ordering::Acquire) {
            rt.try_run(|wk| {
                for _ in 0..8 {
                    wk.spawn(|_| {
                        for _ in 0..2_000 {
                            std::hint::spin_loop();
                        }
                    });
                }
            })
            .expect("healthy pump session");
            pumped.fetch_add(1, Ordering::Release);
        }
    })
}

/// The PR-10 tentpole, suspended flavor: a session wedged on a cell
/// nobody will ever write is declared `Stalled` within ~2× its
/// configured stall budget even though a sibling session keeps the pool
/// continuously busy — the per-session progress heartbeat sees through
/// busy siblings where the old idle-pool sampler abstained.
#[test]
fn wedged_session_stalls_next_to_busy_sibling() {
    let rt = Arc::new(Runtime::new(2));
    let stop = Arc::new(AtomicBool::new(false));
    let pumped = Arc::new(std::sync::atomic::AtomicU64::new(0));
    let sibling = busy_sibling(&rt, &stop, &pumped);
    // Let the pump establish real load before the victim starts.
    while pumped.load(Ordering::Acquire) < 2 {
        std::thread::yield_now();
    }

    let budget = Duration::from_millis(300);
    let (_w, r) = cell::<u32>(); // write half kept alive, never fulfilled
    let before = pumped.load(Ordering::Acquire);
    let started = std::time::Instant::now();
    let err = rt
        .try_run_session(Session::new().stall_budget(budget), move |wk| {
            r.touch(wk, |_v, _wk| {})
        })
        .unwrap_err();
    let elapsed = started.elapsed();
    let during = pumped.load(Ordering::Acquire) - before;

    match &err {
        SessionError::Stalled { report, .. } => {
            assert!(report.live >= 1, "{report:?}");
            assert_eq!(report.session, err.session(), "{report:?}");
            assert!(report.frozen >= 2, "{report:?}");
            assert!(report.frozen_for >= budget, "{report:?}");
        }
        other => panic!("expected Stalled, got {other}"),
    }
    assert!(
        elapsed < 2 * budget,
        "detection took {elapsed:?}, budget {budget:?}"
    );
    assert!(
        during >= 1,
        "sibling went idle during detection — the blind-spot condition was not exercised"
    );
    stop.store(true, Ordering::Release);
    sibling.join().unwrap();
    rt.try_run(|_wk| {}).unwrap();
}

/// The running flavor: a task body spinning forever (polling nothing but
/// its cancel flag) freezes the session's epoch while holding a worker.
/// An explicit stall budget arms the detector for this case too — no
/// deadline involved.
#[test]
fn running_wedge_stalls_with_explicit_budget() {
    let rt = Arc::new(Runtime::new(2));
    let stop = Arc::new(AtomicBool::new(false));
    let pumped = Arc::new(std::sync::atomic::AtomicU64::new(0));
    let sibling = busy_sibling(&rt, &stop, &pumped);

    let budget = Duration::from_millis(300);
    let started = std::time::Instant::now();
    let err = rt
        .try_run_session(Session::new().stall_budget(budget), |wk| {
            wk.spawn(|wk| {
                // A wedge that at least honors cancellation, so the abort
                // can reclaim the worker after detection.
                while !wk.cancelled() {
                    std::hint::spin_loop();
                }
            });
        })
        .unwrap_err();
    let elapsed = started.elapsed();
    assert!(matches!(err, SessionError::Stalled { .. }), "{err}");
    assert!(
        elapsed < 2 * budget,
        "detection took {elapsed:?}, budget {budget:?}"
    );
    stop.store(true, Ordering::Release);
    sibling.join().unwrap();
    rt.try_run(|_wk| {}).unwrap();
}

/// No-false-positive pin: a slow but *progressing* session — each stage
/// sleeps well below the budget, then fulfills the next cell — runs far
/// past its stall budget in total and still completes `Ok`, because
/// every stage bumps the progress epoch and resets the freeze window.
#[test]
fn slow_but_progressing_session_is_not_stalled() {
    let rt = Arc::new(Runtime::new(2));
    let stop = Arc::new(AtomicBool::new(false));
    let pumped = Arc::new(std::sync::atomic::AtomicU64::new(0));
    let sibling = busy_sibling(&rt, &stop, &pumped);

    let budget = Duration::from_millis(250);
    let stages = 8u64; // 8 × 50 ms = 400 ms total, well past the budget
    let (w0, mut prev) = cell::<u64>();
    let last = prev.clone();
    let mut chain = Vec::new();
    for _ in 0..stages - 1 {
        let (w, r) = cell::<u64>();
        let src = std::mem::replace(&mut prev, r);
        chain.push((src, w));
    }
    let last = if stages > 1 { prev.clone() } else { last };
    let started = std::time::Instant::now();
    rt.try_run_session(Session::new().stall_budget(budget), move |wk| {
        for (src, w) in chain {
            src.touch(wk, move |v, wk| {
                std::thread::sleep(Duration::from_millis(50));
                w.fulfill(wk, v + 1);
            });
        }
        std::thread::sleep(Duration::from_millis(50));
        w0.fulfill(wk, 1);
    })
    .expect("slow-but-progressing session must not be declared stalled");
    assert_eq!(last.expect(), stages);
    assert!(
        started.elapsed() > budget,
        "the run must outlive the budget for this pin to mean anything"
    );
    stop.store(true, Ordering::Release);
    sibling.join().unwrap();
}

/// Even without an explicit budget, a suspended-only wedge next to a
/// busy sibling is caught by the default heartbeat budget — the ROADMAP
/// blind spot is closed by default, not only when opted into.
#[test]
fn suspended_wedge_detected_by_default_next_to_busy_sibling() {
    let rt = Arc::new(Runtime::new(2));
    let stop = Arc::new(AtomicBool::new(false));
    let pumped = Arc::new(std::sync::atomic::AtomicU64::new(0));
    let sibling = busy_sibling(&rt, &stop, &pumped);

    let (_w, r) = cell::<u32>();
    let started = std::time::Instant::now();
    let err = rt.try_run(move |wk| r.touch(wk, |_v, _wk| {})).unwrap_err();
    let elapsed = started.elapsed();
    assert!(matches!(err, SessionError::Stalled { .. }), "{err}");
    // The default budget is 1 s; 2× covers it with room for load.
    assert!(elapsed < Duration::from_secs(2), "took {elapsed:?}");
    stop.store(true, Ordering::Release);
    sibling.join().unwrap();
    rt.try_run(|_wk| {}).unwrap();
}

/// `live_sessions` observes the table: zero at rest, and the slot count
/// returns to zero after concurrent sessions retire (slots are
/// per-session garbage, not pool state).
#[test]
fn session_table_drains_to_empty() {
    let rt = Arc::new(Runtime::new(2));
    assert_eq!(rt.live_sessions(), 0);
    let clients: Vec<_> = (0..3)
        .map(|_| {
            let rt = Arc::clone(&rt);
            std::thread::spawn(move || {
                for _ in 0..10 {
                    let (w, r) = cell::<u32>();
                    rt.try_run(move |wk| {
                        wk.spawn(move |wk| w.fulfill(wk, 1));
                    })
                    .unwrap();
                    assert_eq!(r.expect(), 1);
                }
            })
        })
        .collect();
    for c in clients {
        c.join().unwrap();
    }
    assert_eq!(rt.live_sessions(), 0, "slots leaked past their sessions");
}
