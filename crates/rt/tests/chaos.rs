//! Seeded chaos stress suite — compiled only under `RUSTFLAGS='--cfg
//! pf_chaos'`. With injection armed, every session either completes
//! cleanly or comes back as `Err` from `try_run`; it never hangs, and the
//! pool keeps serving across hundreds of injected faults.
//!
//! One test function on purpose: the chaos config is process-global, so
//! parallel test threads would perturb each other's injection rates.

#![cfg(pf_chaos)]

use pf_rt::chaos::{injected_panics, install, ChaosConfig};
use pf_rt::{cell, Runtime, SessionError, Worker};

/// A pipelined computation with real suspensions: a chain of cells where
/// each stage touches the previous cell and fulfills the next, with every
/// stage its own task. Stages race with the fulfil wave, so the injected
/// panics, delays, and steal denials land on suspends, fulfills, wakeups,
/// and steals — not just task boundaries.
fn chained_sum(rt: &Runtime, depth: u64) -> Result<u64, SessionError> {
    let (w0, mut prev) = cell::<u64>();
    let mut stages: Vec<Box<dyn FnOnce(&Worker) + Send>> = Vec::new();
    for _ in 0..depth {
        let (w, r) = cell::<u64>();
        let src = prev.clone();
        stages.push(Box::new(move |wk: &Worker| {
            src.touch(wk, move |v, wk| w.fulfill(wk, v + 1));
        }));
        prev = r;
    }
    let last = prev.clone();
    rt.try_run(move |wk| {
        for st in stages {
            wk.spawn(move |wk| st(wk));
        }
        w0.fulfill(wk, 0);
    })?;
    // Ok means quiescence: every stage ran, so the last cell is written.
    Ok(last.expect())
}

#[test]
fn seeded_chaos_sessions_fail_contained_or_complete() {
    let rt = Runtime::new(4);
    let mut failed = 0usize;
    let mut completed = 0usize;

    for seed in 0..120u64 {
        install(Some(ChaosConfig {
            seed: 0xC0FFEE ^ seed,
            panic_per_10k: 150,
            delay_per_10k: 400,
            delay_spins: 200,
            steal_fail_per_10k: 2000,
        }));
        let before = injected_panics();
        let res = chained_sum(&rt, 24);
        let injected = injected_panics() > before;
        match res {
            Ok(v) => {
                assert_eq!(v, 24);
                assert!(!injected, "seed {seed}: injected a panic yet completed");
                completed += 1;
            }
            Err(e) => {
                // Every failure must trace back to an injected fault.
                assert!(injected, "seed {seed}: failed without an injection: {e}");
                assert!(
                    e.panic_message().is_some_and(|m| m.contains("pf-chaos")),
                    "seed {seed}: unexpected error {e}"
                );
                failed += 1;
            }
        }
    }

    // The chosen rates must actually exercise both outcomes.
    assert!(failed > 0, "chaos rates never fired");
    assert!(completed > 0, "chaos rates never let a session finish");

    // Disarm and prove the pool is clean: 50 quiet runs, zero failures.
    install(None);
    for i in 0..50u64 {
        let v = chained_sum(&rt, 8).expect("clean run after chaos disarm");
        assert_eq!(v, 8, "iteration {i}");
    }
}
