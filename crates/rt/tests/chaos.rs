//! Seeded chaos stress suite — compiled only under `RUSTFLAGS='--cfg
//! pf_chaos'`. With injection armed, every session either completes
//! cleanly or comes back as `Err` from `try_run`; it never hangs, and the
//! pool keeps serving across hundreds of injected faults.
//!
//! One test function on purpose: the chaos config is process-global, so
//! parallel test threads would perturb each other's injection rates.

#![cfg(pf_chaos)]

use pf_rt::chaos::{injected_panics, injected_wedges, install, ChaosConfig};
use pf_rt::{cell, Runtime, SchedPolicy, Session, SessionError, StealKind, VictimSelect, Worker};

/// A pipelined computation with real suspensions: a chain of cells where
/// each stage touches the previous cell and fulfills the next, with every
/// stage its own task. Stages race with the fulfil wave, so the injected
/// panics, delays, and steal denials land on suspends, fulfills, wakeups,
/// and steals — not just task boundaries.
fn chained_sum(rt: &Runtime, depth: u64) -> Result<u64, SessionError> {
    let (w0, mut prev) = cell::<u64>();
    let mut stages: Vec<Box<dyn FnOnce(&Worker) + Send>> = Vec::new();
    for _ in 0..depth {
        let (w, r) = cell::<u64>();
        let src = prev.clone();
        stages.push(Box::new(move |wk: &Worker| {
            src.touch(wk, move |v, wk| w.fulfill(wk, v + 1));
        }));
        prev = r;
    }
    let last = prev.clone();
    rt.try_run(move |wk| {
        for st in stages {
            wk.spawn(move |wk| st(wk));
        }
        w0.fulfill(wk, 0);
    })?;
    // Ok means quiescence: every stage ran, so the last cell is written.
    Ok(last.expect())
}

#[test]
fn seeded_chaos_sessions_fail_contained_or_complete() {
    let rt = Runtime::new(4);
    let mut failed = 0usize;
    let mut completed = 0usize;

    for seed in 0..120u64 {
        install(Some(ChaosConfig {
            seed: 0xC0FFEE ^ seed,
            panic_per_10k: 150,
            delay_per_10k: 400,
            delay_spins: 200,
            steal_fail_per_10k: 2000,
            wedge_per_10k: 0,
            wedge_hold_ms: 0,
        }));
        let before = injected_panics();
        let res = chained_sum(&rt, 24);
        let injected = injected_panics() > before;
        match res {
            Ok(v) => {
                assert_eq!(v, 24);
                assert!(!injected, "seed {seed}: injected a panic yet completed");
                completed += 1;
            }
            Err(e) => {
                // Every failure must trace back to an injected fault.
                assert!(injected, "seed {seed}: failed without an injection: {e}");
                assert!(
                    e.panic_message().is_some_and(|m| m.contains("pf-chaos")),
                    "seed {seed}: unexpected error {e}"
                );
                failed += 1;
            }
        }
    }

    // The chosen rates must actually exercise both outcomes.
    assert!(failed > 0, "chaos rates never fired");
    assert!(completed > 0, "chaos rates never let a session finish");

    // Phase 2 (PR 8): the batched steal path under denial. Steal-half
    // claims up to MAX_STEAL_BATCH tasks per episode, and last-victim-
    // first re-aims at the productive deque — both behind the same
    // `steal_denied` seam. A denied batch must be all-or-nothing: the
    // fan-out below piles thousands of tasks onto the root's deque, so a
    // torn batch (task lost or duplicated across the denial) shows up as
    // a hang (caught by try_run never returning — the suite would time
    // out) or a wrong chain sum.
    let half = Runtime::with_policy(
        4,
        SchedPolicy {
            steal: StealKind::Half,
            victim: VictimSelect::LastVictimFirst,
            ..SchedPolicy::default()
        },
    );
    let mut failed = 0usize;
    let mut completed = 0usize;
    for seed in 0..120u64 {
        install(Some(ChaosConfig {
            seed: 0xBA7C4 ^ seed.rotate_left(17),
            // Low panic rate: the fan-out below visits ~200 injection
            // points per seed, so ~0.3% per point still fails roughly
            // half the seeds while letting the other half finish.
            panic_per_10k: 30,
            delay_per_10k: 300,
            delay_spins: 200,
            // Deny roughly a third of steal attempts: batches are
            // constantly interrupted mid-drain and retried elsewhere.
            steal_fail_per_10k: 3300,
            wedge_per_10k: 0,
            wedge_hold_ms: 0,
        }));
        let before = injected_panics();
        let res = half.try_run(|wk| {
            for _ in 0..128 {
                wk.spawn(|_| std::hint::black_box(()));
            }
        });
        let res = res.and_then(|_| chained_sum(&half, 24));
        let injected = injected_panics() > before;
        match res {
            Ok(v) => {
                assert_eq!(v, 24, "seed {seed}: steal-half chain sum");
                completed += 1;
            }
            Err(e) => {
                assert!(
                    injected,
                    "seed {seed}: steal-half failed w/o injection: {e}"
                );
                assert!(
                    e.panic_message().is_some_and(|m| m.contains("pf-chaos")),
                    "seed {seed}: unexpected steal-half error {e}"
                );
                failed += 1;
            }
        }
    }
    assert!(failed > 0, "steal-half chaos rates never fired");
    assert!(completed > 0, "steal-half sessions never finished");

    // Phase 3 (PR 9): concurrent sessions under chaos. Panic injection
    // off, delay + steal-denial injection on — the noise perturbs every
    // schedule while a deterministic panic pill aborts one session per
    // round. The pill's sibling shares the pool mid-abort and must
    // return `Ok` with the right value every time: fault containment
    // holds under scheduling chaos, not just on quiet schedules.
    let mut pill_failed = 0usize;
    for seed in 0..60u64 {
        install(Some(ChaosConfig {
            seed: 0x5E5510 ^ seed.rotate_left(9),
            panic_per_10k: 0,
            delay_per_10k: 500,
            delay_spins: 200,
            steal_fail_per_10k: 2500,
            wedge_per_10k: 0,
            wedge_hold_ms: 0,
        }));
        std::thread::scope(|s| {
            let rt = &rt;
            let pill = s.spawn(move || {
                rt.try_run(|wk| {
                    for _ in 0..32 {
                        wk.spawn(|_| std::hint::black_box(()));
                    }
                    wk.spawn(|_| panic!("session pill"));
                })
            });
            let v = chained_sum(rt, 24)
                .expect("sibling of a panic-pill session must complete under chaos");
            assert_eq!(v, 24, "seed {seed}: sibling result corrupted");
            let err = pill
                .join()
                .unwrap()
                .expect_err("the pill session must abort");
            assert_eq!(
                err.panic_message(),
                Some("session pill"),
                "seed {seed}: wrong abort reason"
            );
            pill_failed += 1;
        });
    }
    assert_eq!(pill_failed, 60, "every pill session must have aborted");

    // Phase 4 (PR 10): seeded mid-task wedges against the progress-
    // heartbeat stall detector. A wedge parks a worker inside a task
    // body (no panic, no event — the exact signature the old idle-pool
    // watchdog could not see while siblings kept the pool busy). Two
    // concurrent budgeted sessions per seed: each must come back — `Ok`
    // when its wedge released in time (the hold is bounded), `Stalled`
    // otherwise, never a hang — and every stall must trace back to an
    // injected wedge and be declared within 2× the configured budget.
    let budget = std::time::Duration::from_millis(250);
    let run_budgeted = |depth: u64| -> Result<u64, SessionError> {
        let (w0, mut prev) = cell::<u64>();
        let mut stages: Vec<Box<dyn FnOnce(&Worker) + Send>> = Vec::new();
        for _ in 0..depth {
            let (w, r) = cell::<u64>();
            let src = prev.clone();
            stages.push(Box::new(move |wk: &Worker| {
                src.touch(wk, move |v, wk| w.fulfill(wk, v + 1));
            }));
            prev = r;
        }
        let last = prev.clone();
        rt.try_run_session(Session::new().stall_budget(budget), move |wk| {
            for st in stages {
                wk.spawn(move |wk| st(wk));
            }
            w0.fulfill(wk, 0);
        })?;
        Ok(last.expect())
    };
    let mut stalled = 0usize;
    let mut wedged_ok = 0usize;
    for seed in 0..25u64 {
        install(Some(ChaosConfig {
            seed: 0x3DBED ^ seed.rotate_left(23),
            panic_per_10k: 0,
            delay_per_10k: 200,
            delay_spins: 100,
            steal_fail_per_10k: 1500,
            wedge_per_10k: 250,
            // Far past the budget: detection must beat the hold, not
            // wait it out — but a missed detection still terminates.
            wedge_hold_ms: 3_000,
        }));
        let before = injected_wedges();
        let results = std::thread::scope(|s| {
            let a = s.spawn(|| run_budgeted(24));
            let b = run_budgeted(24);
            [a.join().unwrap(), b]
        });
        let injected = injected_wedges() > before;
        for res in results {
            match res {
                Ok(v) => {
                    assert_eq!(v, 24, "seed {seed}: wedge-phase chain sum");
                    if injected {
                        wedged_ok += 1;
                    }
                }
                Err(SessionError::Stalled { report, .. }) => {
                    assert!(injected, "seed {seed}: stalled without a wedge injection");
                    assert!(
                        report.frozen_for < 2 * budget,
                        "seed {seed}: detection took {:?} against a {budget:?} budget",
                        report.frozen_for
                    );
                    stalled += 1;
                }
                Err(e) => panic!("seed {seed}: unexpected error under wedge chaos: {e}"),
            }
        }
    }
    assert!(stalled > 0, "wedge chaos never produced a detected stall");
    // Non-assertion telemetry: sessions whose wedge landed harmlessly.
    let _ = wedged_ok;

    // Disarm and prove both pools are clean: 50 quiet runs each, zero
    // failures.
    install(None);
    for i in 0..50u64 {
        let v = chained_sum(&rt, 8).expect("clean run after chaos disarm");
        assert_eq!(v, 8, "iteration {i}");
        let v = chained_sum(&half, 8).expect("clean steal-half run after disarm");
        assert_eq!(v, 8, "steal-half iteration {i}");
    }
}
