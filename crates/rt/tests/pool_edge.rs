//! Pool edge cases that randomized stress can't reliably pin down: the
//! degenerate single-worker pool, sessions that spawn nothing, and two OS
//! threads contending for `Runtime::global()` back to back. The model
//! checker (`crates/check`) covers the interleavings; these cover the
//! real-thread configurations.

#![cfg(not(pf_check))] // global()/shared() don't exist in model builds

use pf_rt::{cell, Runtime};
use std::sync::Arc;

#[test]
fn shared_single_worker_runs_suspending_session() {
    // One worker means every suspension must be resumed by the SAME
    // worker that suspended it — there is no thief to hand the
    // continuation to. Register the consumer first so it genuinely
    // suspends, then fulfill from a later task in the same queue.
    let rt = Runtime::shared(1);
    assert_eq!(rt.nthreads(), 1);
    for round in 0u64..20 {
        let (w, r) = cell::<u64>();
        let (ow, or) = cell::<u64>();
        let stats = rt.run_stats(move |wk| {
            wk.spawn(move |wk| {
                r.touch(wk, move |v, wk| ow.fulfill(wk, v + 1));
            });
            wk.spawn(move |wk| w.fulfill(wk, round));
        });
        assert_eq!(or.expect(), round + 1, "round {round}");
        assert_eq!(stats.spawns, 2);
        assert_eq!(stats.tasks_executed, 1 + stats.spawns + stats.suspensions);
    }
    // The shared pool is cached per width: asking again must return the
    // very same pool, not spin up fresh threads.
    assert!(Arc::ptr_eq(&rt, &Runtime::shared(1)));
}

#[test]
fn zero_task_run_quiesces_immediately() {
    // A root that spawns nothing: the session must still start, quiesce,
    // and reset cleanly — repeatedly, since a lost-wakeup style bug here
    // shows up as a hang on some LATER session, not the first.
    let rt = Runtime::new(3);
    for round in 0..50 {
        let stats = rt.run_stats(|_wk| {});
        assert_eq!(stats.spawns, 0, "round {round}");
        assert_eq!(stats.suspensions, 0, "round {round}");
        assert_eq!(stats.tasks_executed, 1, "round {round}");
    }
}

#[test]
fn global_contention_from_two_os_threads() {
    // Two OS threads each push back-to-back sessions through the one
    // global pool. Sessions co-execute (each gets its own slot in the
    // session table); the assertion is that neither thread's results or
    // per-session stats are polluted by the other's tasks (cross-session
    // leakage through the shared injector/deques). The dedicated
    // concurrent-session suite is tests/sessions.rs.
    let contenders: Vec<_> = (0..2u64)
        .map(|t| {
            std::thread::spawn(move || {
                for round in 0..25u64 {
                    let n = 8 + (round as usize % 5);
                    let pairs: Vec<_> = (0..n).map(|_| cell::<u64>()).collect();
                    let (writes, reads): (Vec<_>, Vec<_>) = pairs.into_iter().unzip();
                    let outs: Vec<_> = (0..n).map(|_| cell::<u64>()).collect();
                    let (out_w, out_r): (Vec<_>, Vec<_>) = outs.into_iter().unzip();
                    let tag = t * 1_000_000 + round * 1_000;
                    let stats = Runtime::global().run_stats(move |wk| {
                        for (r, ow) in reads.into_iter().zip(out_w) {
                            wk.spawn(move |wk| {
                                r.touch(wk, move |v, wk| ow.fulfill(wk, v ^ 1));
                            });
                        }
                        for (i, w) in writes.into_iter().enumerate() {
                            wk.spawn(move |wk| w.fulfill(wk, tag + i as u64));
                        }
                    });
                    for (i, o) in out_r.iter().enumerate() {
                        assert_eq!(o.expect(), (tag + i as u64) ^ 1, "thread {t} round {round}");
                    }
                    assert_eq!(stats.spawns, 2 * n as u64, "thread {t} round {round}");
                    assert!(stats.suspensions <= n as u64, "thread {t} round {round}");
                    assert_eq!(
                        stats.tasks_executed,
                        1 + stats.spawns + stats.suspensions,
                        "thread {t} round {round}: cross-session leakage"
                    );
                }
            })
        })
        .collect();
    for c in contenders {
        c.join().expect("contender thread panicked");
    }
}
