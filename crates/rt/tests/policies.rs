//! Cross-policy behavior suite (PR 8): every combination of the four
//! scheduling-policy axes must produce the same algorithm answers with
//! the same policy-independent accounting — scheduling is a performance
//! knob, never a semantics knob.
//!
//! The policy-independent accounting contract: for a session whose root
//! closure is policy-blind, `spawns` is identical across policies (every
//! spawned task is counted once whether it was pushed or run inline),
//! and the liveness identity `tasks_executed - suspensions == spawns + 1`
//! holds (each task runs once; a resumed continuation re-enters the
//! executed count through its suspension). Raw `tasks_executed` may
//! legitimately differ across policies because suspension *counts*
//! depend on scheduling (a touch only suspends if it loses its race with
//! the fulfill).

use pf_rt::{
    cell, FutWrite, ResumePlace, Runtime, SchedPolicy, Session, SpawnOrder, StealKind,
    VictimSelect, Worker,
};

/// A binary fork tree of depth `d` summing 2^d leaf ones through cells:
/// exercises spawn order, stealing, suspension, and resume placement in
/// one deterministic-fates workload.
fn tree_sum(wk: &Worker, depth: u32, out: FutWrite<u64>) {
    if depth == 0 {
        out.fulfill(wk, 1);
        return;
    }
    let (lw, lr) = cell();
    let (rw, rr) = cell();
    wk.spawn2(
        move |wk| tree_sum(wk, depth - 1, lw),
        move |wk| tree_sum(wk, depth - 1, rw),
    );
    lr.touch(wk, move |a, wk| {
        rr.touch(wk, move |b, wk| out.fulfill(wk, a + b));
    });
}

type Stage = Box<dyn FnOnce(&Worker) + Send>;

/// A sequential chain of `n` cells, each stage touching its predecessor
/// and fulfilling its successor: the resume-placement torture case
/// (inline resume recurses, mailbox resume bounces between owners).
fn chain_sum(rt: &Runtime, policy: SchedPolicy, n: u64) -> u64 {
    let (w0, mut prev) = cell::<u64>();
    let mut stages: Vec<Stage> = Vec::new();
    for _ in 0..n {
        let (w, r) = cell::<u64>();
        let src = prev.clone();
        stages.push(Box::new(move |wk: &Worker| {
            src.touch(wk, move |v, wk| w.fulfill(wk, v + 1));
        }));
        prev = r;
    }
    let last = prev.clone();
    rt.try_run_session(Session::new().policy(policy), move |wk| {
        for st in stages {
            wk.spawn(move |wk| st(wk));
        }
        w0.fulfill(wk, 0);
    })
    .expect("chain session must complete under every policy");
    last.expect()
}

#[test]
fn matrix_covers_all_axis_combinations() {
    let m = SchedPolicy::matrix();
    assert_eq!(
        m.len(),
        2 * 2 * 3 * 2,
        "2 steal × 2 victim × 3 resume × 2 spawn"
    );
    assert_eq!(
        m[0],
        SchedPolicy::default(),
        "default policy leads the matrix"
    );
    let labels: std::collections::BTreeSet<_> = m.iter().map(|p| p.label()).collect();
    assert_eq!(labels.len(), m.len(), "labels are unique");
}

#[test]
fn every_policy_computes_the_same_tree_sum() {
    const DEPTH: u32 = 9;
    for threads in [1usize, 4] {
        let mut pinned_spawns: Option<u64> = None;
        for policy in SchedPolicy::matrix() {
            let rt = Runtime::with_policy(threads, policy);
            let (ow, or) = cell::<u64>();
            let stats = rt.run_stats(move |wk| tree_sum(wk, DEPTH, ow));
            assert_eq!(
                or.expect(),
                1u64 << DEPTH,
                "{} t={threads}: wrong sum",
                policy.label()
            );
            // Policy-independent accounting: spawns are identical, and
            // the liveness identity holds exactly.
            let spawns = *pinned_spawns.get_or_insert(stats.spawns);
            assert_eq!(
                stats.spawns,
                spawns,
                "{} t={threads}: spawn count must not depend on the policy",
                policy.label()
            );
            assert_eq!(
                stats.tasks_executed - stats.suspensions,
                stats.spawns + 1,
                "{} t={threads}: tasks - suspensions == spawns + root",
                policy.label()
            );
            #[cfg(feature = "trace")]
            {
                let trace = stats.trace.as_ref().expect("traced build");
                assert_eq!(trace.policy, policy.label(), "stats carry the policy tag");
                assert_eq!(trace.spawns(), stats.spawns);
                assert_eq!(trace.executed(), stats.tasks_executed);
                assert_eq!(trace.suspends(), stats.suspensions);
                assert_eq!(trace.steals(), stats.steals);
            }
        }
    }
}

#[test]
fn every_policy_completes_a_deep_chain() {
    // 3000 strictly sequential suspensions: inline resume must not blow
    // the stack (the depth guard falls back to enqueueing), and mailbox
    // resume must not lose a wakeup — including on a single worker,
    // where the mailbox owner is always the fulfiller itself.
    for threads in [1usize, 3] {
        let rt = Runtime::new(threads);
        for policy in SchedPolicy::matrix() {
            assert_eq!(
                chain_sum(&rt, policy, 3000),
                3000,
                "{} t={threads}",
                policy.label()
            );
        }
    }
}

#[test]
fn session_policy_overrides_runtime_default() {
    let non_default = SchedPolicy {
        steal: StealKind::Half,
        victim: VictimSelect::LastVictimFirst,
        resume: ResumePlace::Mailbox,
        spawn: SpawnOrder::ChildFirst,
    };
    let rt = Runtime::with_policy(2, non_default);
    assert_eq!(rt.default_policy(), non_default);
    // Runs without an override inherit the runtime default; a session
    // override wins for exactly that session.
    let (ow, or) = cell::<u64>();
    rt.try_run_session(Session::new().policy(SchedPolicy::default()), move |wk| {
        tree_sum(wk, 6, ow)
    })
    .unwrap();
    assert_eq!(or.expect(), 64);
    let (ow, or) = cell::<u64>();
    rt.run(move |wk| tree_sum(wk, 6, ow));
    assert_eq!(or.expect(), 64);
}

#[test]
fn builder_sets_policy_and_ring_capacity() {
    let policy = SchedPolicy {
        spawn: SpawnOrder::ChildFirst,
        ..SchedPolicy::default()
    };
    let rt = Runtime::builder(2)
        .policy(policy)
        .trace_ring_cap(64)
        .build();
    assert_eq!(rt.default_policy(), policy);
    let (ow, or) = cell::<u64>();
    rt.run(move |wk| tree_sum(wk, 5, ow));
    assert_eq!(or.expect(), 32);
}

#[cfg(feature = "trace")]
mod traced {
    use super::*;

    #[test]
    fn tiny_ring_reports_drops_in_stats_and_export() {
        // A 4-event ring cannot hold a 2^7-task session: the exact
        // counters stay exact, the drop counter owns the difference, and
        // the Perfetto export says so in its metadata.
        let rt = Runtime::builder(1).trace_ring_cap(4).build();
        let (ow, or) = cell::<u64>();
        let stats = rt.run_stats(move |wk| tree_sum(wk, 7, ow));
        assert_eq!(or.expect(), 128);
        let trace = stats.trace.as_ref().unwrap();
        assert_eq!(
            trace.executed(),
            stats.tasks_executed,
            "counters never drop"
        );
        assert!(trace.dropped() > 0, "a 4-event ring must overflow");
        let timeline = rt.take_last_trace().unwrap();
        assert_eq!(timeline.ring_capacity, 4);
        let json = timeline.to_chrome_trace();
        assert!(json.contains("\"ringCapacity\":4"));
        assert!(json.contains(&format!("\"droppedEvents\":{}", timeline.dropped())));
        assert!(json.contains(&format!(
            "\"policy\":\"{}\"",
            SchedPolicy::default().label()
        )));
    }

    #[test]
    fn steal_half_moves_batches_on_a_wide_pool() {
        // Under steal-half with parent-first spawning, a fan-out of
        // thousands of tasks piles onto the root's deque and thieves
        // drain it in batches; the steal *count* (tasks obtained by
        // stealing) still reconciles with RunStats.
        let policy = SchedPolicy {
            steal: StealKind::Half,
            ..SchedPolicy::default()
        };
        let rt = Runtime::with_policy(4, policy);
        for _ in 0..20 {
            let stats = rt.run_stats(|wk| {
                for _ in 0..4000 {
                    wk.spawn(|_| std::thread::yield_now());
                }
            });
            let trace = stats.trace.as_ref().unwrap();
            assert_eq!(trace.steals(), stats.steals);
            assert_eq!(trace.policy, policy.label());
            if stats.steals > 0 {
                return;
            }
        }
        panic!("no steal in 20 fan-out sessions under steal-half at t=4");
    }

    #[test]
    fn mailbox_resume_records_matched_suspend_resume_pairs() {
        let policy = SchedPolicy {
            resume: ResumePlace::Mailbox,
            ..SchedPolicy::default()
        };
        const N: usize = 25;
        let rt = Runtime::with_policy(1, policy);
        let stats = rt.run_stats(|wk| {
            for i in 0..N {
                let (w, r) = cell::<usize>();
                r.touch(wk, move |v, _| assert_eq!(v, i));
                wk.spawn(move |wk| w.fulfill(wk, i));
            }
        });
        let trace = stats.trace.as_ref().unwrap();
        assert_eq!(trace.suspends(), N as u64);
        assert_eq!(trace.resumes(), N as u64);
        assert_eq!(trace.policy, policy.label());
    }

    #[test]
    fn inline_resume_executes_fewer_parked_handoffs() {
        // Inline resume runs the waiter in the fulfiller's stack frame:
        // the accounting must still record the resume and the exec, and
        // suspend/resume pairs must match.
        let policy = SchedPolicy {
            resume: ResumePlace::Inline,
            ..SchedPolicy::default()
        };
        let rt = Runtime::with_policy(2, policy);
        let stats = rt.run_stats(|wk| {
            for i in 0..30usize {
                let (w, r) = cell::<usize>();
                r.touch(wk, move |v, _| assert_eq!(v, i));
                wk.spawn(move |wk| w.fulfill(wk, i));
            }
        });
        let trace = stats.trace.as_ref().unwrap();
        assert_eq!(trace.resumes(), trace.suspends());
        assert_eq!(trace.executed(), stats.tasks_executed);
        assert_eq!(
            stats.tasks_executed - stats.suspensions,
            stats.spawns + 1,
            "liveness identity holds under inline resume"
        );
    }
}
