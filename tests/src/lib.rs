//! Shared helpers for the cross-crate integration tests.

use std::collections::BTreeSet;

use pf_trees::seq::Entry;

/// Sorted union of two entry lists' keys.
pub fn oracle_union(a: &[Entry<i64>], b: &[Entry<i64>]) -> Vec<i64> {
    let s: BTreeSet<i64> = a.iter().chain(b.iter()).map(|e| e.0).collect();
    s.into_iter().collect()
}

/// Sorted difference (a minus b) of two entry lists' keys.
pub fn oracle_diff(a: &[Entry<i64>], b: &[Entry<i64>]) -> Vec<i64> {
    let bs: BTreeSet<i64> = b.iter().map(|e| e.0).collect();
    let s: BTreeSet<i64> = a.iter().map(|e| e.0).filter(|k| !bs.contains(k)).collect();
    s.into_iter().collect()
}

/// Sorted merge of two disjoint sorted key lists.
pub fn oracle_merge(a: &[i64], b: &[i64]) -> Vec<i64> {
    let mut v: Vec<i64> = a.iter().chain(b.iter()).copied().collect();
    v.sort_unstable();
    v
}

/// Deterministic entries from a key iterator (priorities hashed from keys).
pub fn entries(keys: impl IntoIterator<Item = i64>) -> Vec<Entry<i64>> {
    keys.into_iter()
        .map(|k| (k, pf_trees::seq::splitmix64(k as u64 ^ 0xDEAD_BEEF)))
        .collect()
}
