//! Smoke-run every experiment at reduced size and assert the *direction*
//! of each paper claim — the full-size numbers live in EXPERIMENTS.md,
//! but the shapes must hold at any size.

use pf_bench::exp_linear::e11_linearity;
use pf_bench::exp_machine::{e09_scheduler, e10_models, e14_space};
use pf_bench::exp_model::*;
use pf_bench::exp_rt::{e12_runtime, e15_cost_constants, rt_matches_model};
use pf_machine::INFINITE_P;

fn col(t: &pf_bench::Table, row: usize, name: &str) -> f64 {
    let i = t
        .headers
        .iter()
        .position(|h| h == name)
        .unwrap_or_else(|| panic!("no column {name:?} in {:?}", t.headers));
    t.rows[row][i].parse().unwrap()
}

#[test]
fn e01_pipelining_halves_depth() {
    let t = e01_pipeline(&[500, 1000]);
    for r in 0..t.rows.len() {
        let ratio = col(&t, r, "strict/pipe");
        assert!((1.8..2.2).contains(&ratio), "ratio {ratio}");
    }
}

#[test]
fn e02_pipelined_increment_constant_strict_grows() {
    let ts = e02_merge(&[7, 8, 9, 10], 11);
    let t = &ts[0];
    // Pipelined depth increments stay flat; strict increments grow with lg n.
    let d = |r: usize| col(t, r, "depth(pipe)");
    let s = |r: usize| col(t, r, "depth(strict)");
    let pipe_incr1 = d(1) - d(0);
    let pipe_incr3 = d(3) - d(2);
    assert!(
        (pipe_incr3 - pipe_incr1).abs() <= 4.0,
        "{pipe_incr1} vs {pipe_incr3}"
    );
    let strict_incr1 = s(1) - s(0);
    let strict_incr3 = s(3) - s(2);
    assert!(
        strict_incr3 > strict_incr1,
        "{strict_incr1} vs {strict_incr3}"
    );
}

#[test]
fn e02_work_ratio_stays_bounded() {
    let ts = e02_merge(&[7, 8], 12);
    let t = &ts[1];
    let ratios: Vec<f64> = (0..t.rows.len()).map(|r| col(t, r, "ratio")).collect();
    let (min, max) = (
        ratios.iter().cloned().fold(f64::MAX, f64::min),
        ratios.iter().cloned().fold(0.0, f64::max),
    );
    assert!(max / min < 2.5, "work/bound ratio drifts: {ratios:?}");
}

#[test]
fn e03_e04_e06_strict_ratio_grows_with_n() {
    let t = e04_union_depth(&[7, 10], &[1, 2, 3]);
    assert!(col(&t, 1, "strict/pipe") > col(&t, 0, "strict/pipe"));
    let t = e06_diff(&[7, 10], &[1, 2, 3]);
    assert!(col(&t, 1, "strict/pipe") > col(&t, 0, "strict/pipe"));
}

#[test]
fn e04_tau_ks_bounded_across_sizes() {
    let t = e04_union_depth(&[7, 9, 11], &[1, 2]);
    let ks: Vec<f64> = (0..3).map(|r| col(&t, r, "min ks")).collect();
    assert!(ks.iter().all(|k| k.is_finite() && *k < 64.0), "{ks:?}");
}

#[test]
fn e05_work_bound_ratio_bounded() {
    let t = e05_union_work(12, &[1, 2]);
    let ratios: Vec<f64> = (0..t.rows.len()).map(|r| col(&t, r, "ratio")).collect();
    let (min, max) = (
        ratios.iter().cloned().fold(f64::MAX, f64::min),
        ratios.iter().cloned().fold(0.0, f64::max),
    );
    assert!(max / min < 3.0, "{ratios:?}");
}

#[test]
fn e07_gamma_increments_bounded() {
    let ts = e07_two_six(&[9, 10, 11], 6);
    let g = &ts[1];
    // Δγ column: all increments below a generous constant.
    for r in &g.rows {
        let dg: i64 = r[3].trim_start_matches('+').parse().unwrap();
        assert!(dg <= 40, "γ increment {dg} too large: {r:?}");
    }
}

#[test]
fn e08_quicksort_depth_linear() {
    let t = e08_quicksort(&[200, 800], &[1, 2]);
    let dn0 = col(&t, 0, "depth/n");
    let dn1 = col(&t, 1, "depth/n");
    // depth/n roughly flat => Θ(n).
    assert!((dn1 / dn0 - 1.0).abs() < 0.35, "{dn0} vs {dn1}");
}

#[test]
fn e09_brent_and_exactness() {
    let t = e09_scheduler(7, &[1, 8, INFINITE_P]);
    for r in 0..t.rows.len() {
        assert!(col(&t, r, "steps/bound") <= 1.0 + 1e-9);
    }
}

#[test]
fn e10_scan_model_beats_erew_at_scale() {
    let t = e10_models(10, 6, &[256]);
    let scan = col(&t, 0, "EREW+scan");
    let erew = col(&t, 0, "EREW");
    assert!(scan < erew);
}

#[test]
fn e11_everything_linear() {
    let t = e11_linearity(7);
    for r in &t.rows {
        assert_eq!(r[4], "yes", "{}", r[0]);
    }
}

#[test]
fn e12_smoke_and_cross_check() {
    let ts = e12_runtime(9, &[1], 1);
    assert_eq!(ts.len(), 3);
    assert!(rt_matches_model(8));
}

#[test]
fn e13_mergesort_subquadratic_in_log() {
    let t = e13_mergesort(&[8, 11], &[1]);
    // d / lg²n should not grow: consistent with the O(lg n lglg n) conjecture.
    let r0 = col(&t, 0, "d/lg² n");
    let r1 = col(&t, 1, "d/lg² n");
    assert!(r1 <= r0 * 1.15, "{r0} vs {r1}");
}

#[test]
fn e14_stack_never_worse_than_queue() {
    let t = e14_space(8, &[4, 16]);
    for r in 0..t.rows.len() {
        assert!(col(&t, r, "queue/stack") >= 1.0);
    }
}

#[test]
fn e16_hand_pipeline_logarithmic() {
    let t = pf_bench::exp_machine::e16_pvw(&[8, 12], 5);
    let r0: f64 = col(&t, 0, "hand rounds");
    let r1: f64 = col(&t, 1, "hand rounds");
    assert!(r1 - r0 <= 4.0, "hand rounds must grow ~O(1) per 16x n");
}

#[test]
fn e17_async_within_constant_of_sync() {
    let t = pf_bench::exp_machine::e17_steal(8, &[4]);
    for r in 0..t.rows.len() {
        let ratio = col(&t, r, "async/sync");
        assert!(ratio < 3.5, "async makespan blew up: {ratio}");
    }
}

#[test]
fn e18_cole_exact_and_futures_close() {
    let t = pf_bench::exp_model::e18_cole(&[7, 9], &[1]);
    for r in 0..t.rows.len() {
        assert_eq!(t.rows[r][1], t.rows[r][2], "cole must be exactly 3 lg n");
        let work_const = col(&t, r, "cole work/(n·lg n)");
        assert!(work_const < 3.0);
    }
}

#[test]
fn e15_depth_scales_with_constants() {
    let t = e15_cost_constants(9, &[1, 3]);
    let d1 = col(&t, 0, "depth");
    let d3 = col(&t, 1, "depth");
    assert!(d3 > 2.0 * d1 && d3 < 3.2 * d1, "{d1} vs {d3}");
}
