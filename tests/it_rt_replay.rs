//! Trace/replay cross-validation: Lemma 4.1 tied to the *real* runtime.
//!
//! For each workload (treap union, 2-6 tree multi-insert) we:
//!
//! 1. run it on the cost-model simulator with tracing and assert the
//!    p = ∞ greedy replay of the captured DAG finishes in exactly `depth`
//!    steps — Lemma 4.1's "greedy schedule achieves the depth bound"
//!    claim, checked on the actual trace rather than the closed form;
//! 2. run the *same* workload on the real work-stealing runtime across
//!    thread counts and assert it computes the identical structure with
//!    internally consistent scheduling stats.
//!
//! Together these tie the lemma to `pf_rt`: the DAG whose replay meets
//! the depth bound is demonstrably the DAG the runtime executes (same
//! algorithm, same input, same output shape), not an artifact of `Sim`.

use pf_core::Sim;
use pf_machine::{replay, Discipline, INFINITE_P};
use pf_rt::{cell, ready, Runtime};
use pf_rt_algs::rtreap::{union as rt_union, RTreap, RtTreap};
use pf_rt_algs::rtwosix::{insert_many as rt_insert_many, RTsTree, RtTsTree};
use pf_tests::entries;
use pf_trees::treap::{union, SimTreap, Treap};
use pf_trees::two_six::{insert_many, SimTsTree, TsTree};
use pf_trees::Mode;

#[test]
fn treap_union_replay_meets_depth_bound_and_rt_agrees() {
    let a = entries((0..300).map(|i| 3 * i));
    let b = entries((0..300).map(|i| 2 * i));

    // Simulator, traced. `run_union` doesn't trace, so inline its body.
    let (a2, b2) = (a.clone(), b.clone());
    let (of, report, trace) = Sim::new().run_traced(move |ctx| {
        let ta = Treap::preload_entries(ctx, &a2);
        let tb = Treap::preload_entries(ctx, &b2);
        let fa = ctx.preload(ta);
        let fb = ctx.preload(tb);
        let (op, of) = ctx.promise();
        union(ctx, fa, fb, op, Mode::Pipelined);
        of
    });
    let model = of.get();
    assert!(model.check_invariants());
    let (keys, height) = (model.to_sorted_vec(), model.height());

    // Lemma 4.1 at p = ∞ on the captured DAG: exactly `depth` steps, all
    // work executed, every suspension reactivated.
    let stats = replay(&trace, INFINITE_P, Discipline::Stack);
    assert_eq!(
        stats.steps, report.depth,
        "p = ∞ replay must take exactly depth steps"
    );
    assert_eq!(stats.work_executed, report.work);
    assert_eq!(stats.suspensions, stats.reactivations);

    // Real runtime on the same input: identical tree (keys AND shape —
    // treap shape is priority-determined, so equality is exact), and
    // stats that account for every executed closure.
    for threads in [1, 2, 4] {
        let (op, of) = cell();
        let (ta, tb) = (
            ready(RTreap::from_entries_ready(&a)),
            ready(RTreap::from_entries_ready(&b)),
        );
        let rstats = Runtime::new(threads).run_stats(move |wk| rt_union(wk, ta, tb, op));
        let t = of.expect();
        assert!(t.check_invariants(), "threads={threads}");
        assert_eq!(t.to_sorted_vec(), keys, "threads={threads}");
        assert_eq!(t.height(), height, "threads={threads}");
        assert_eq!(
            rstats.tasks_executed,
            1 + rstats.spawns + rstats.suspensions,
            "threads={threads}"
        );
        // The runtime executes the simulator's fork structure verbatim
        // (spawning is data-determined, not schedule-determined), and
        // every runtime suspension is a touch that parked — so the
        // trace's touch count bounds it regardless of interleaving.
        assert_eq!(rstats.spawns, report.forks, "threads={threads}");
        assert!(rstats.suspensions <= report.touches, "threads={threads}");
    }
}

#[test]
fn two_six_insert_replay_meets_depth_bound_and_rt_agrees() {
    let initial: Vec<i64> = (0..200).map(|i| 2 * i).collect();
    let keys: Vec<i64> = (0..150).map(|i| 2 * i + 1).collect();

    let (i2, k2) = (initial.clone(), keys.clone());
    let (ft, report, trace) = Sim::new().run_traced(move |ctx| {
        let t = TsTree::preload_from_sorted(ctx, &i2);
        let f = ctx.preload(t);
        insert_many(ctx, &k2, f, Mode::Pipelined)
    });
    let model = ft.get();
    model.validate().expect("sim 2-6 tree invariants");
    let model_keys = model.to_sorted_vec();

    let stats = replay(&trace, INFINITE_P, Discipline::Stack);
    assert_eq!(
        stats.steps, report.depth,
        "p = ∞ replay must take exactly depth steps"
    );
    assert_eq!(stats.work_executed, report.work);
    assert_eq!(stats.suspensions, stats.reactivations);

    for threads in [1, 3] {
        let (op, of) = cell();
        let (i3, k3) = (initial.clone(), keys.clone());
        let rstats = Runtime::new(threads).run_stats(move |wk| {
            let t = ready(RTsTree::from_sorted_ready(&i3));
            let f = rt_insert_many(wk, &k3, t);
            f.touch(wk, move |tv, wk| op.fulfill(wk, tv));
        });
        let t = of.expect();
        t.validate()
            .unwrap_or_else(|e| panic!("threads={threads}: {e}"));
        assert_eq!(t.to_sorted_vec(), model_keys, "threads={threads}");
        assert_eq!(
            rstats.tasks_executed,
            1 + rstats.spawns + rstats.suspensions,
            "threads={threads}"
        );
        // Same structural tie as the union test. The root's
        // result-forwarding touch runs inside the root closure itself,
        // not a spawned task, so spawn counts still match exactly.
        assert_eq!(rstats.spawns, report.forks, "threads={threads}");
        assert!(rstats.suspensions <= report.touches, "threads={threads}");
    }
}
