//! Cross-backend agreement: the cost-model simulator, the real runtime,
//! and the sequential references must produce identical results (and for
//! treaps, identical shapes) on identical inputs, across thread counts.

use pf_backend::{PipeBackend, Seq};
use pf_rt::{cell, ready, Runtime};
use pf_rt_algs::rlist::{consume, produce, qs, RList, RtList};
use pf_rt_algs::rtreap::{diff as rt_diff, union as rt_union, RTreap, RtTreap};
use pf_rt_algs::rtree::{merge as rt_merge, RTree, RtTree};
use pf_rt_algs::rtwosix::{insert_many as rt_insert_many, RTsTree, RtTsTree};
use pf_tests::entries;
use pf_trees::merge::run_merge;
use pf_trees::seq::PlainTreap;
use pf_trees::treap::{run_diff, run_union};
use pf_trees::two_six::run_insert_many;
use pf_trees::workloads::shuffled_keys;
use pf_trees::Mode;

#[test]
fn merge_agrees_across_backends() {
    for (na, nb) in [(0usize, 5usize), (5, 0), (100, 100), (777, 333)] {
        let a: Vec<i64> = (0..na as i64).map(|i| 2 * i).collect();
        let b: Vec<i64> = (0..nb as i64).map(|i| 2 * i + 1).collect();
        let (root, _) = run_merge(&a, &b, Mode::Pipelined);
        let model = root.get().to_sorted_vec();
        for threads in [1, 3] {
            let (op, of) = cell();
            let (ta, tb) = (
                ready(RTree::from_sorted_ready(&a)),
                ready(RTree::from_sorted_ready(&b)),
            );
            Runtime::new(threads).run(move |wk| rt_merge(wk, ta, tb, op));
            assert_eq!(
                of.expect().to_sorted_vec(),
                model,
                "na={na} nb={nb} threads={threads}"
            );
        }
    }
}

#[test]
fn union_shape_agrees_across_all_three_backends() {
    let a = entries((0..500).map(|i| 3 * i));
    let b = entries((0..500).map(|i| 2 * i));
    // Sequential.
    let pu = PlainTreap::union(PlainTreap::from_entries(&a), PlainTreap::from_entries(&b));
    let seq_keys = PlainTreap::to_sorted_vec(&pu);
    let seq_height = PlainTreap::height(&pu);
    // Cost model.
    let (root, _) = run_union(&a, &b, Mode::Pipelined);
    assert_eq!(root.get().to_sorted_vec(), seq_keys);
    assert_eq!(root.get().height(), seq_height);
    // Real runtime.
    for threads in [1, 2, 4] {
        let (op, of) = cell();
        let (ta, tb) = (
            ready(RTreap::from_entries_ready(&a)),
            ready(RTreap::from_entries_ready(&b)),
        );
        Runtime::new(threads).run(move |wk| rt_union(wk, ta, tb, op));
        let t = of.expect();
        assert_eq!(t.to_sorted_vec(), seq_keys, "threads={threads}");
        assert_eq!(t.height(), seq_height, "threads={threads}");
    }
}

#[test]
fn diff_agrees_across_backends() {
    let a = entries(0..600);
    let b = entries((0..600).filter(|k| k % 4 == 0));
    let pd = PlainTreap::diff(PlainTreap::from_entries(&a), PlainTreap::from_entries(&b));
    let seq_keys = PlainTreap::to_sorted_vec(&pd);
    let (root, _) = run_diff(&a, &b, Mode::Pipelined);
    assert_eq!(root.get().to_sorted_vec(), seq_keys);
    assert_eq!(root.get().height(), PlainTreap::height(&pd));
    for threads in [1, 4] {
        let (op, of) = cell();
        let (ta, tb) = (
            ready(RTreap::from_entries_ready(&a)),
            ready(RTreap::from_entries_ready(&b)),
        );
        Runtime::new(threads).run(move |wk| rt_diff(wk, ta, tb, op));
        assert_eq!(of.expect().to_sorted_vec(), seq_keys, "threads={threads}");
    }
}

#[test]
fn rebalance_agrees_across_all_three_backends() {
    for n in [0usize, 1, 37, 300] {
        let keys: Vec<i64> = shuffled_keys(n, 11 + n as u64);
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        // Cost model: deterministic shape, used as the reference below.
        let (root, _) = pf_trees::rebalance::run_rebalance(&keys, Mode::Pipelined);
        let model = root.get();
        assert_eq!(model.to_sorted_vec(), sorted, "n={n}");
        // Sequential oracle: the same generic text at B = Seq.
        let seq_tree = Seq::run(|bk| {
            let ft = bk.input(pf_algs::rebalance::unbalanced_from(bk, &keys));
            let (op, of) = bk.cell();
            pf_algs::rebalance::rebalance(bk, ft, op, Mode::Pipelined);
            pf_algs::tree::Tree::<Seq, i64>::expect(&of)
        });
        assert_eq!(seq_tree.to_sorted_vec(), sorted, "n={n}");
        assert_eq!(seq_tree.height(), model.height(), "n={n}");
        // Real runtime, multiple thread counts: identical deterministic shape.
        for threads in [1, 4] {
            let keys = keys.clone();
            let (op, of) = cell();
            Runtime::new(threads).run(move |wk| {
                let ft = wk.input(pf_algs::rebalance::unbalanced_from(wk, &keys));
                pf_rt_algs::rrebalance::rebalance(wk, ft, op);
            });
            let t = of.expect();
            assert_eq!(t.to_sorted_vec(), sorted, "n={n} threads={threads}");
            assert_eq!(t.height(), model.height(), "n={n} threads={threads}");
        }
    }
}

#[test]
fn two_six_insert_agrees_across_all_three_backends() {
    for (n, m) in [(0usize, 40usize), (400, 120), (1000, 1)] {
        let initial: Vec<i64> = (0..n as i64).map(|i| 2 * i).collect();
        let newk: Vec<i64> = (0..m as i64).map(|i| 8 * i + 1).collect();
        let mut expect = initial.clone();
        expect.extend(&newk);
        expect.sort_unstable();
        // Cost model.
        let (root, _) = run_insert_many(&initial, &newk, Mode::Pipelined);
        let model = root.get();
        model.validate().unwrap();
        assert_eq!(model.to_sorted_vec(), expect, "n={n} m={m}");
        // Sequential oracle: the same generic text at B = Seq.
        let seq_tree = Seq::run(|bk| {
            let ft = bk.input(pf_algs::two_six::TsTree::<Seq, i64>::from_sorted(
                bk, &initial,
            ));
            let f = pf_algs::two_six::insert_many(bk, &newk, ft, Mode::Pipelined);
            pf_algs::two_six::TsTree::<Seq, i64>::expect(&f)
        });
        seq_tree.validate().unwrap();
        assert_eq!(seq_tree.to_sorted_vec(), expect, "n={n} m={m}");
        // Real runtime, multiple thread counts.
        for threads in [1, 4] {
            let ft = ready(RTsTree::from_sorted_ready(&initial));
            let (op, of) = cell();
            let keys = newk.clone();
            Runtime::new(threads).run(move |wk| {
                let f = rt_insert_many(wk, &keys, ft);
                f.touch(wk, move |tv, wk| op.fulfill(wk, tv));
            });
            let t = of.expect();
            t.validate().unwrap();
            assert_eq!(t.to_sorted_vec(), expect, "n={n} m={m} threads={threads}");
        }
    }
}

#[test]
fn pipeline_sum_agrees() {
    let n = 5000u64;
    // The eager evaluator nests one native frame per list element; use the
    // big-stack helper for deep pipelines (see pf_core::run_with_big_stack).
    let (sum_model, _) = pf_core::run_with_big_stack(256 << 20, move || {
        pf_trees::pipeline::run_pipeline(n, Mode::Pipelined)
    });
    let (sp, sf) = cell();
    Runtime::new(3).run(move |wk| {
        let (lp, lf) = cell();
        wk.spawn(move |wk| produce(wk, n, lp));
        lf.touch(wk, move |l, wk| consume(wk, l, 0, sp));
    });
    assert_eq!(sf.expect(), sum_model);
}

#[test]
fn quicksort_agrees_with_std_sort() {
    for seed in 0..5 {
        let keys = shuffled_keys(400, seed);
        let mut expect = keys.clone();
        expect.sort_unstable();
        // Cost model.
        let (l, _) = pf_trees::quicksort::run_quicksort(&keys, Mode::Pipelined);
        assert_eq!(l.collect_vec(), expect);
        // Real runtime.
        let rl = RList::from_slice_ready(&keys);
        let (op, of) = cell();
        Runtime::new(4).run(move |wk| qs(wk, rl, RList::Nil, op));
        assert_eq!(of.expect().collect_vec(), expect);
    }
}

#[test]
fn algorithms_are_generic_over_key_types() {
    // Everything so far runs on i64; the API is generic — prove it with
    // owned string keys across both backends.
    let a: Vec<String> = (0..60).map(|i| format!("a{:03}", 2 * i)).collect();
    let b: Vec<String> = (0..40).map(|i| format!("a{:03}", 2 * i + 1)).collect();
    let mut expect: Vec<String> = a.iter().chain(b.iter()).cloned().collect();
    expect.sort();

    let (root, c) = run_merge(&a, &b, Mode::Pipelined);
    assert_eq!(root.get().to_sorted_vec(), expect);
    assert!(c.is_linear());

    let (op, of) = cell();
    let (ta, tb) = (
        ready(RTree::from_sorted_ready(&a)),
        ready(RTree::from_sorted_ready(&b)),
    );
    Runtime::new(2).run(move |wk| rt_merge(wk, ta, tb, op));
    assert_eq!(of.expect().to_sorted_vec(), expect);

    // Treap union over string keys in the cost model.
    let ea: Vec<(String, u64)> = a
        .iter()
        .map(|k| {
            (
                k.clone(),
                pf_trees::seq::splitmix64(k.len() as u64 ^ 0x77)
                    ^ (k.bytes().map(u64::from).sum::<u64>() * 2654435761),
            )
        })
        .collect();
    let eb: Vec<(String, u64)> = b
        .iter()
        .map(|k| (k.clone(), k.bytes().map(u64::from).product::<u64>() | 1))
        .collect();
    let (uroot, _) = run_union(&ea, &eb, Mode::Pipelined);
    assert_eq!(uroot.get().to_sorted_vec(), expect);
    assert!(uroot.get().check_invariants());
}

#[test]
fn mergesort_agrees_across_all_three_backends() {
    for n in [0usize, 1, 2, 37, 300] {
        let keys = shuffled_keys(n, 5 + n as u64);
        let mut expect = keys.clone();
        expect.sort_unstable();
        // Cost model: deterministic shape, used as the height reference.
        let (root, _) = pf_trees::mergesort::run_msort(&keys, Mode::Pipelined);
        let model = root.get();
        assert_eq!(model.to_sorted_vec(), expect, "n={n}");
        // Sequential oracle: the same generic text at B = Seq.
        let seq_tree = Seq::run(|bk| {
            let (op, of) = bk.cell();
            pf_algs::mergesort::msort(bk, keys.clone(), op, Mode::Pipelined);
            pf_algs::tree::Tree::<Seq, i64>::expect(&of)
        });
        assert_eq!(seq_tree.to_sorted_vec(), expect, "n={n}");
        assert_eq!(seq_tree.height(), model.height(), "n={n}");
        // Real runtime, multiple thread counts: identical deterministic shape.
        for threads in [1, 4] {
            let keys = keys.clone();
            let (op, of) = cell();
            Runtime::new(threads)
                .run(move |wk| pf_algs::mergesort::msort(wk, keys, op, Mode::Pipelined));
            let t = of.expect();
            assert_eq!(t.to_sorted_vec(), expect, "n={n} threads={threads}");
            assert_eq!(t.height(), model.height(), "n={n} threads={threads}");
        }
    }
}

#[test]
fn quicksort_agrees_across_all_three_backends() {
    use pf_algs::list::{qs as generic_qs, List};
    for seed in [0u64, 3] {
        let keys = shuffled_keys(400, seed);
        let mut expect = keys.clone();
        expect.sort_unstable();
        // Cost model.
        let (l, _) = pf_trees::quicksort::run_quicksort(&keys, Mode::Pipelined);
        assert_eq!(l.collect_vec(), expect, "seed={seed}");
        // Sequential oracle: the same generic text at B = Seq.
        let seq_sorted = Seq::run(|bk| {
            let l = List::from_slice(bk, &keys);
            let (op, of) = bk.cell();
            generic_qs(bk, l, List::nil(), op, Mode::Pipelined);
            List::<Seq, i64>::expect_vec(&of)
        });
        assert_eq!(seq_sorted, expect, "seed={seed}");
        // Real runtime.
        for threads in [1, 4] {
            let rl = RList::from_slice_ready(&keys);
            let (op, of) = cell();
            Runtime::new(threads).run(move |wk| qs(wk, rl, RList::Nil, op));
            assert_eq!(
                of.expect().collect_vec(),
                expect,
                "seed={seed} threads={threads}"
            );
        }
    }
}

#[test]
#[should_panic(expected = "future cell touched before it was written")]
fn seq_oracle_rejects_touch_before_write() {
    // The sequential backend is the Σ_f ⇒ Σ oracle: it must refuse any
    // program whose futures-free erasure would read an unwritten cell.
    Seq::run(|bk| {
        let (_wr, f) = bk.cell::<i64>();
        bk.touch(&f, |_bk, _v| {});
    });
}

/// PR 8 pin: every scheduling policy (the full 24-combination matrix of
/// steal granularity × victim selection × resume placement × spawn
/// order) yields bit-identical algorithm results — keys *and*
/// deterministic tree shape — and identical policy-independent
/// accounting on the tri-backend suite's treap-union and mergesort
/// workloads. "Policy-independent accounting" is `spawns` (a spawned
/// task is counted once whether pushed or run inline) plus the liveness
/// identity `tasks_executed - suspensions == spawns + 1`; raw executed
/// counts legitimately vary across policies because whether a touch
/// suspends depends on the schedule.
#[test]
fn every_sched_policy_is_result_identical_across_the_suite() {
    use pf_rt::SchedPolicy;
    // Union reference (sequential oracle).
    let a = entries((0..400).map(|i| 3 * i));
    let b = entries((0..400).map(|i| 2 * i));
    let pu = PlainTreap::union(PlainTreap::from_entries(&a), PlainTreap::from_entries(&b));
    let union_keys = PlainTreap::to_sorted_vec(&pu);
    let union_height = PlainTreap::height(&pu);
    // Mergesort reference (cost-model shape).
    let keys = shuffled_keys(300, 77);
    let mut sorted = keys.clone();
    sorted.sort_unstable();
    let (mroot, _) = pf_trees::mergesort::run_msort(&keys, Mode::Pipelined);
    let msort_height = mroot.get().height();

    for threads in [1usize, 4] {
        let mut union_spawns: Option<u64> = None;
        let mut msort_spawns: Option<u64> = None;
        for policy in SchedPolicy::matrix() {
            let rt = Runtime::with_policy(threads, policy);
            let label = policy.label();

            let (op, of) = cell();
            let (ta, tb) = (
                ready(RTreap::from_entries_ready(&a)),
                ready(RTreap::from_entries_ready(&b)),
            );
            let stats = rt.run_stats(move |wk| rt_union(wk, ta, tb, op));
            let t = of.expect();
            assert_eq!(t.to_sorted_vec(), union_keys, "union {label} t={threads}");
            assert_eq!(t.height(), union_height, "union {label} t={threads}");
            let s = *union_spawns.get_or_insert(stats.spawns);
            assert_eq!(stats.spawns, s, "union {label} t={threads}: spawns");
            assert_eq!(
                stats.tasks_executed - stats.suspensions,
                stats.spawns + 1,
                "union {label} t={threads}: liveness identity"
            );

            let keys = keys.clone();
            let (op, of) = cell();
            let stats =
                rt.run_stats(move |wk| pf_algs::mergesort::msort(wk, keys, op, Mode::Pipelined));
            let t = of.expect();
            assert_eq!(t.to_sorted_vec(), sorted, "msort {label} t={threads}");
            assert_eq!(t.height(), msort_height, "msort {label} t={threads}");
            let s = *msort_spawns.get_or_insert(stats.spawns);
            assert_eq!(stats.spawns, s, "msort {label} t={threads}: spawns");
            assert_eq!(
                stats.tasks_executed - stats.suspensions,
                stats.spawns + 1,
                "msort {label} t={threads}: liveness identity"
            );
        }
    }
}

#[test]
fn repeated_rt_runs_are_deterministic_in_value() {
    // Scheduling is nondeterministic; results must not be.
    let a = entries((0..300).map(|i| 2 * i));
    let b = entries((0..300).map(|i| 2 * i + 1));
    let mut first: Option<Vec<i64>> = None;
    for _ in 0..20 {
        let (op, of) = cell();
        let (ta, tb) = (
            ready(RTreap::from_entries_ready(&a)),
            ready(RTreap::from_entries_ready(&b)),
        );
        Runtime::new(4).run(move |wk| rt_union(wk, ta, tb, op));
        let keys = of.expect().to_sorted_vec();
        match &first {
            None => first = Some(keys),
            Some(f) => assert_eq!(&keys, f),
        }
    }
}

#[test]
fn union_is_bit_identical_under_concurrent_panicking_sibling() {
    // PR-9 fault-containment half of the identity suite: a treap union
    // whose session shares the pool with a panicking sibling session
    // must produce the same sorted keys AND the same deterministic shape
    // as its solo run — fault containment is semantic, not just "no
    // crash". (The solo determinism itself is pinned by
    // `repeated_rt_runs_are_deterministic_in_value` above.)
    use std::sync::Arc;

    let a = entries((0..400).map(|i| 3 * i));
    let b = entries((0..400).map(|i| 2 * i));
    let rt = Arc::new(Runtime::new(4));

    // Solo baseline on the same pool.
    let (op, of) = cell();
    let (ta, tb) = (
        ready(RTreap::from_entries_ready(&a)),
        ready(RTreap::from_entries_ready(&b)),
    );
    rt.try_run(move |wk| rt_union(wk, ta, tb, op)).unwrap();
    let solo = of.expect();
    let (solo_keys, solo_height) = (solo.to_sorted_vec(), solo.height());

    for round in 0..10 {
        let rt2 = Arc::clone(&rt);
        let pill = std::thread::spawn(move || {
            let (_w, r) = cell::<u32>(); // never written; poisoned on abort
            let r_in = r.clone();
            rt2.try_run(move |wk| {
                r_in.touch(wk, |_v, _wk| {});
                wk.spawn(|_| panic!("sibling pill"));
            })
            .unwrap_err()
        });
        let (op, of) = cell();
        let (ta, tb) = (
            ready(RTreap::from_entries_ready(&a)),
            ready(RTreap::from_entries_ready(&b)),
        );
        rt.try_run(move |wk| rt_union(wk, ta, tb, op))
            .expect("union session alongside a panicking sibling");
        let t = of.expect();
        assert_eq!(t.to_sorted_vec(), solo_keys, "round {round}: keys diverged");
        assert_eq!(t.height(), solo_height, "round {round}: shape diverged");
        let err = pill.join().unwrap();
        assert_eq!(err.panic_message(), Some("sibling pill"));
    }
}
