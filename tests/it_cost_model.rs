//! Integration tests of the cost model across the whole algorithm suite:
//! global invariants (depth ≤ work, strictness preserves work, pipelining
//! never hurts depth, results fully materialize within the measured
//! depth) plus property-based correctness against oracles.

use pf_tests::{entries, oracle_diff, oracle_merge, oracle_union};
use pf_trees::merge::run_merge;
use pf_trees::quicksort::run_quicksort;
use pf_trees::rebalance::run_rebalance;
use pf_trees::treap::{run_diff, run_union, SimTreap, Treap};
use pf_trees::tree::{SimTree, Tree};
use pf_trees::two_six::run_insert_many;
use pf_trees::Mode;
use proptest::prelude::*;

/// Every algorithm, one canonical run: the global cost-model invariants.
#[test]
fn global_cost_invariants() {
    let a = entries((0..300).map(|i| 2 * i));
    let b = entries((0..300).map(|i| 3 * i));

    let checks: Vec<(&str, pf_core::CostReport, pf_core::CostReport)> = vec![
        {
            let ka: Vec<i64> = (0..256).map(|i| 2 * i).collect();
            let kb: Vec<i64> = (0..256).map(|i| 2 * i + 1).collect();
            let (_, p) = run_merge(&ka, &kb, Mode::Pipelined);
            let (_, s) = run_merge(&ka, &kb, Mode::Strict);
            ("merge", p, s)
        },
        {
            let (_, p) = run_union(&a, &b, Mode::Pipelined);
            let (_, s) = run_union(&a, &b, Mode::Strict);
            ("union", p, s)
        },
        {
            let (_, p) = run_diff(&a, &b, Mode::Pipelined);
            let (_, s) = run_diff(&a, &b, Mode::Strict);
            ("diff", p, s)
        },
        {
            let initial: Vec<i64> = (0..500).map(|i| 2 * i).collect();
            let newk: Vec<i64> = (0..100).map(|i| 10 * i + 1).collect();
            let (_, p) = run_insert_many(&initial, &newk, Mode::Pipelined);
            let (_, s) = run_insert_many(&initial, &newk, Mode::Strict);
            ("2-6 insert", p, s)
        },
    ];
    for (name, p, s) in checks {
        assert!(p.depth <= p.work, "{name}: depth must be <= work");
        assert_eq!(p.work, s.work, "{name}: strictness must preserve work");
        assert!(
            p.depth <= s.depth,
            "{name}: pipelining must never hurt depth"
        );
        assert!(p.is_linear(), "{name}: must be linear code");
        assert!(p.parallelism() >= 1.0, "{name}: parallelism sanity");
    }
}

/// The result structure is fully written no later than the measured depth
/// (every cell's timestamp is within the report's depth).
#[test]
fn results_materialize_within_depth() {
    let ka: Vec<i64> = (0..500).map(|i| 2 * i).collect();
    let kb: Vec<i64> = (0..400).map(|i| 2 * i + 1).collect();
    let (root, c) = run_merge(&ka, &kb, Mode::Pipelined);
    let done = Tree::completion_time(&root);
    assert!(done <= c.depth, "completion {done} > depth {}", c.depth);

    let a = entries(0..400);
    let b = entries(200..700);
    let (root, c) = run_union(&a, &b, Mode::Pipelined);
    let done = Treap::completion_time(&root);
    assert!(done <= c.depth);
}

/// Strict variants produce byte-identical structures, just later.
#[test]
fn strict_produces_identical_structure() {
    let a = entries((0..311).map(|i| 7 * i));
    let b = entries((0..293).map(|i| 5 * i));
    let (rp, _) = run_union(&a, &b, Mode::Pipelined);
    let (rs, _) = run_union(&a, &b, Mode::Strict);
    assert_eq!(rp.get().to_sorted_vec(), rs.get().to_sorted_vec());
    assert_eq!(rp.get().height(), rs.get().height());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn merge_matches_oracle(
        mut a in proptest::collection::btree_set(-2000i64..2000, 0..150),
        b in proptest::collection::btree_set(-2000i64..2000, 0..150),
    ) {
        // Make the sets disjoint (merge's precondition).
        for k in &b { a.remove(k); }
        let av: Vec<i64> = a.into_iter().collect();
        let bv: Vec<i64> = b.into_iter().collect();
        let (root, c) = run_merge(&av, &bv, Mode::Pipelined);
        let t = root.get();
        prop_assert!(t.is_search_tree());
        prop_assert_eq!(t.to_sorted_vec(), oracle_merge(&av, &bv));
        prop_assert!(c.is_linear());
    }

    #[test]
    fn union_matches_oracle(
        a in proptest::collection::btree_set(-1000i64..1000, 0..120),
        b in proptest::collection::btree_set(-1000i64..1000, 0..120),
    ) {
        let ea = entries(a);
        let eb = entries(b);
        let (root, c) = run_union(&ea, &eb, Mode::Pipelined);
        let t = root.get();
        prop_assert!(t.check_invariants());
        prop_assert_eq!(t.to_sorted_vec(), oracle_union(&ea, &eb));
        prop_assert!(c.is_linear());
    }

    #[test]
    fn diff_matches_oracle(
        a in proptest::collection::btree_set(-1000i64..1000, 0..120),
        b in proptest::collection::btree_set(-1000i64..1000, 0..120),
    ) {
        let ea = entries(a);
        let eb = entries(b);
        let (root, c) = run_diff(&ea, &eb, Mode::Pipelined);
        let t = root.get();
        prop_assert!(t.check_invariants());
        prop_assert_eq!(t.to_sorted_vec(), oracle_diff(&ea, &eb));
        prop_assert!(c.is_linear());
    }

    #[test]
    fn intersect_matches_oracle(
        a in proptest::collection::btree_set(-1000i64..1000, 0..120),
        b in proptest::collection::btree_set(-1000i64..1000, 0..120),
    ) {
        use std::collections::BTreeSet;
        let expect: Vec<i64> = a.intersection(&b).copied().collect::<BTreeSet<_>>()
            .into_iter().collect();
        let ea = entries(a);
        let eb = entries(b);
        let (root, c) = pf_trees::treap::run_intersect(&ea, &eb, Mode::Pipelined);
        let t = root.get();
        prop_assert!(t.check_invariants());
        prop_assert_eq!(t.to_sorted_vec(), expect);
        prop_assert!(c.is_linear());
    }

    #[test]
    fn union_then_diff_roundtrip(
        a in proptest::collection::btree_set(0i64..500, 1..80),
        b in proptest::collection::btree_set(500i64..1000, 1..80),
    ) {
        // (a ∪ b) \ b == a when a and b are disjoint.
        let ea = entries(a.iter().copied());
        let eb = entries(b);
        let (u, _) = run_union(&ea, &eb, Mode::Pipelined);
        let union_entries: Vec<_> = entries(u.get().to_sorted_vec());
        let (d, _) = run_diff(&union_entries, &eb, Mode::Pipelined);
        prop_assert_eq!(d.get().to_sorted_vec(), a.into_iter().collect::<Vec<_>>());
    }

    #[test]
    fn two_six_insert_matches_oracle(
        initial in proptest::collection::btree_set(0i64..4000, 0..250),
        newk in proptest::collection::btree_set(0i64..4000, 0..120),
    ) {
        let iv: Vec<i64> = initial.iter().copied().collect();
        let nv: Vec<i64> = newk.iter().copied().collect();
        let (root, c) = run_insert_many(&iv, &nv, Mode::Pipelined);
        let t = root.get();
        prop_assert!(t.validate().is_ok(), "{:?}", t.validate());
        let all: Vec<i64> = initial.union(&newk).copied().collect();
        prop_assert_eq!(t.to_sorted_vec(), all);
        prop_assert!(c.is_linear());
    }

    #[test]
    fn quicksort_sorts_anything(mut keys in proptest::collection::vec(-500i64..500, 0..200)) {
        let (l, _) = run_quicksort(&keys, Mode::Pipelined);
        keys.sort_unstable();
        prop_assert_eq!(l.collect_vec(), keys);
    }

    #[test]
    fn rebalance_balances_anything(keys in proptest::collection::btree_set(-5000i64..5000, 0..200)) {
        let kv: Vec<i64> = keys.iter().copied().collect();
        let (root, _) = run_rebalance(&kv, Mode::Pipelined);
        let t = root.get();
        prop_assert!(t.is_search_tree());
        prop_assert_eq!(t.to_sorted_vec(), kv.clone());
        if !kv.is_empty() {
            let perfect = (kv.len() as f64).log2().floor() as usize + 1;
            prop_assert!(t.height() <= perfect, "height {} > {perfect}", t.height());
        }
    }
}
