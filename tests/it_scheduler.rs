//! Integration tests of the §4 machine simulator against real algorithm
//! traces: Lemma 4.1 bounds, exact p = ∞ depth equality, work
//! conservation, and discipline-independence of the outcome.

use pf_bench::exp_machine::capture_traces;
use pf_machine::{replay, Discipline, INFINITE_P};
use proptest::prelude::*;

#[test]
fn infinite_p_equals_depth_for_all_algorithms() {
    for (name, tr) in capture_traces(8) {
        let s = replay(&tr, INFINITE_P, Discipline::Stack);
        assert_eq!(s.steps, tr.depth, "{name}: p=∞ steps must equal DAG depth");
        assert_eq!(s.work_executed, tr.work, "{name}: replayed work mismatch");
        let q = replay(&tr, INFINITE_P, Discipline::Queue);
        assert_eq!(q.steps, tr.depth, "{name}: queue discipline too");
    }
}

#[test]
fn brent_bound_holds_everywhere() {
    for (name, tr) in capture_traces(8) {
        for p in [1usize, 2, 3, 5, 8, 13, 32, 100, 511] {
            for disc in [Discipline::Stack, Discipline::Queue] {
                let s = replay(&tr, p, disc);
                assert!(
                    s.within_brent(tr.work, tr.depth, p),
                    "{name}: p={p} {disc:?}: {} > bound",
                    s.steps
                );
                assert_eq!(s.work_executed, tr.work, "{name}: work conserved");
                assert_eq!(s.suspensions, s.reactivations, "{name}: suspension balance");
            }
        }
    }
}

#[test]
fn p1_serializes_to_work_steps_at_least() {
    for (name, tr) in capture_traces(7) {
        let s = replay(&tr, 1, Discipline::Stack);
        assert!(
            s.steps >= tr.work,
            "{name}: one processor cannot beat the work"
        );
        // And not much more: every step with a nonempty pool of ready work
        // executes one action; suspended-only steps are the exception.
        assert!(
            s.steps <= tr.work + s.suspensions + 8,
            "{name}: too many idle steps: {} vs work {}",
            s.steps,
            tr.work
        );
    }
}

#[test]
fn steps_monotonically_improve_with_p() {
    for (name, tr) in capture_traces(8) {
        let mut prev = u64::MAX;
        for p in [1usize, 2, 4, 8, 16, 64] {
            let s = replay(&tr, p, Discipline::Stack);
            assert!(s.steps <= prev, "{name}: steps increased from p/2 to p={p}");
            prev = s.steps;
        }
    }
}

#[test]
fn stack_uses_less_space_than_queue() {
    // The space advantage of the stack discipline (§4) is a strong
    // tendency, not a per-trace theorem: on tiny traces the pools can tie
    // or differ by a couple of entries. Assert (a) the stack is never
    // substantially worse, and (b) it wins decisively on the deep traces.
    let mut best_ratio = 0.0f64;
    for (name, tr) in capture_traces(9) {
        let st = replay(&tr, 4, Discipline::Stack);
        let qu = replay(&tr, 4, Discipline::Queue);
        assert!(
            st.max_pool <= 2 * qu.max_pool + 4,
            "{name}: stack {} vastly exceeds queue {}",
            st.max_pool,
            qu.max_pool
        );
        best_ratio = best_ratio.max(qu.max_pool as f64 / st.max_pool.max(1) as f64);
    }
    assert!(
        best_ratio >= 4.0,
        "the stack discipline should win big somewhere, best ratio {best_ratio}"
    );
}

#[test]
fn async_steal_respects_bounds_on_all_algorithms() {
    use pf_machine::{steal_replay, StealConfig};
    for (name, tr) in capture_traces(8) {
        for p in [1usize, 3, 8] {
            let cfg = StealConfig {
                p,
                steal_latency: 2,
                seed: 9 + p as u64,
                ..StealConfig::default()
            };
            let s = steal_replay(&tr, cfg);
            assert_eq!(s.work_executed, tr.work, "{name} p={p}");
            assert!(s.makespan >= tr.depth, "{name}: below critical path");
            assert!(
                s.makespan as u128 >= (tr.work as u128).div_ceil(p as u128),
                "{name}: below work lower bound"
            );
            assert!(
                s.within_steal_bound(tr.work, tr.depth, &cfg, 16),
                "{name} p={p}: makespan {} out of bound",
                s.makespan
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random futures programs under the asynchronous work stealer.
    #[test]
    fn random_programs_steal_replay(seed in 0u64..3000, fanout in 1usize..4, depth in 1usize..5, p in 1usize..6) {
        use pf_core::{Ctx, Sim};
        use pf_machine::{steal_replay, StealConfig};
        fn build(ctx: &Ctx, seed: u64, fanout: usize, depth: usize) -> u64 {
            ctx.tick(1 + (seed % 3));
            if depth == 0 {
                return seed;
            }
            let futs: Vec<_> = (0..fanout)
                .map(|i| {
                    let s = seed.wrapping_mul(6364136223846793005).wrapping_add(i as u64);
                    ctx.fork(move |ctx| build(ctx, s, fanout, depth - 1))
                })
                .collect();
            if seed.is_multiple_of(5) {
                ctx.flat(seed % 29 + 1);
            }
            futs.iter().map(|f| ctx.touch(f)).fold(0u64, u64::wrapping_add)
        }
        let (_, report, trace) = Sim::new().run_traced(move |ctx| build(ctx, seed, fanout, depth));
        let cfg = StealConfig { p, steal_latency: 3, seed, ..StealConfig::default() };
        let s = steal_replay(&trace, cfg);
        prop_assert_eq!(s.work_executed, report.work);
        prop_assert!(s.makespan >= report.depth);
        prop_assert!(s.within_steal_bound(report.work, report.depth, &cfg, 16));
    }

    /// Random futures programs: generate a random fork/write/touch tree in
    /// the simulator, trace it, and check the replay invariants.
    #[test]
    fn random_programs_replay_correctly(seed in 0u64..5000, fanout in 1usize..4, depth in 1usize..6) {
        use pf_core::{Ctx, Sim};
        fn build(ctx: &Ctx, seed: u64, fanout: usize, depth: usize) -> u64 {
            ctx.tick(1 + (seed % 3));
            if depth == 0 {
                return seed;
            }
            let futs: Vec<_> = (0..fanout)
                .map(|i| {
                    let s = seed.wrapping_mul(6364136223846793005).wrapping_add(i as u64);
                    ctx.fork(move |ctx| build(ctx, s, fanout, depth - 1))
                })
                .collect();
            if seed.is_multiple_of(4) {
                ctx.flat(seed % 17 + 1);
            }
            let mut acc = 0u64;
            for f in &futs {
                acc = acc.wrapping_add(ctx.touch(f));
            }
            acc
        }
        let (_, report, trace) = Sim::new().run_traced(move |ctx| build(ctx, seed, fanout, depth));
        prop_assert_eq!(trace.total_actions(), report.work);
        let sinf = replay(&trace, INFINITE_P, Discipline::Stack);
        prop_assert_eq!(sinf.steps, report.depth);
        for p in [1usize, 3, 7] {
            let s = replay(&trace, p, Discipline::Stack);
            prop_assert!(s.within_brent(report.work, report.depth, p));
            prop_assert_eq!(s.work_executed, report.work);
        }
    }
}
